//! Energy/latency cost model exported from circuit calibration.
//!
//! A [`CostModel`] is a flattened, query-rate-friendly view of one
//! `(design, width, rows)` array: per-mismatch-count row-energy and
//! expected-stage lookup tables baked from the same
//! [`RowCalibration`]/[`ArrayModel`] pipeline the circuit-level experiments
//! use, so metering a replayed query stream lands on exactly the numbers
//! fig. 6 (row energy vs mismatches) and fig. 9 (workload energy) report.
//!
//! Every term of [`ArrayModel::average_search_energy`] is linear in the
//! per-(query, row) statistics — mismatch histogram fractions, SL toggle
//! counts, definite-digit counts — so metering each query with
//! [`CostModel::energy_from_hist`] and averaging reproduces the
//! whole-workload number exactly (up to floating-point summation order).

use ftcam_array::{ArrayModel, ArrayParams, PeripheralModel, RowCalibration};
use ftcam_cells::DesignKind;
use ftcam_workloads::{Ternary, TernaryWord};

/// How the replay pipeline meters energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metering {
    /// Full per-row mismatch histogram on every query — exact, `O(rows)`
    /// counting work per query.
    Exact,
    /// `O(width)` per query: exact match count plus the exact total
    /// mismatch count (from per-column content counts), distributed over
    /// the non-matching rows with a calibration-derived affine fit.
    Aggregate,
    /// Exact metering on every `period`-th query; energy per query is the
    /// mean over the metered sample.
    Sampled {
        /// Meter every `period`-th query (≥ 1).
        period: u64,
    },
}

/// Calibrated per-query cost model for one `(design, width, rows)` array.
#[derive(Debug, Clone)]
pub struct CostModel {
    kind: DesignKind,
    width: usize,
    rows: usize,
    /// `row_lut[k]`: expected row energy at `k` mismatches (J), early
    /// termination included for segmented designs.
    row_lut: Vec<f64>,
    /// `stages_lut[k]`: expected evaluated segments at `k` mismatches.
    stages_lut: Vec<f64>,
    /// Affine fit `a + b·k` of `row_lut` over `k ≥ 1` (aggregate metering).
    fit_energy: (f64, f64),
    /// Affine fit of `stages_lut` over `k ≥ 1`.
    fit_stages: (f64, f64),
    /// Segment widths, MSB-first (len > 1 only for segmented designs).
    seg_widths: Vec<usize>,
    /// Per-segment clean-evaluation energy (J).
    seg_e_match: Vec<f64>,
    /// Measured `(m, delta)` points: the extra energy (over `e_match`) of
    /// evaluating a segment containing `m` mismatching cells, derived by
    /// replaying the calibration's spread-mismatch measurements against
    /// the segment map (see [`CostModel::positional_row_energy`]).
    seg_delta: Vec<(f64, f64)>,
    /// Row energy not attributed to any stage (measured clean-row energy
    /// minus the stage sum): SL drive and other per-search overheads.
    seg_overhead: f64,
    e_sl_per_definite_bit: f64,
    sl_gated: bool,
    periph: PeripheralModel,
    t_search: f64,
}

impl CostModel {
    /// Bakes the cost model from a row calibration, using the same
    /// [`ArrayModel`] scaling the circuit-level experiments use.
    ///
    /// # Panics
    ///
    /// Panics if `kind` disagrees with the calibration's design.
    pub fn from_calibration(kind: DesignKind, calibration: &RowCalibration, rows: usize) -> Self {
        let width = calibration.width;
        let model = ArrayModel::new(ArrayParams::new(kind, rows, width), calibration.clone());
        let row_lut: Vec<f64> = (0..=width).map(|k| model.row_energy(k)).collect();
        let stages_lut: Vec<f64> = (0..=width).map(|k| model.expected_stages(k)).collect();
        let fit_energy = affine_fit_binomial(&row_lut, width);
        let fit_stages = affine_fit_binomial(&stages_lut, width);
        let seg_widths: Vec<usize> = calibration.stages.iter().map(|s| s.width).collect();
        let seg_e_match: Vec<f64> = calibration.stages.iter().map(|s| s.e_match).collect();
        let seg_overhead = if seg_widths.len() > 1 {
            calibration.row_energy(0) - seg_e_match.iter().sum::<f64>()
        } else {
            0.0
        };
        let seg_delta = if seg_widths.len() > 1 {
            derive_seg_delta(calibration, &seg_widths, &seg_e_match, seg_overhead)
        } else {
            Vec::new()
        };
        Self {
            kind,
            width,
            rows,
            row_lut,
            stages_lut,
            fit_energy,
            fit_stages,
            seg_widths,
            seg_e_match,
            seg_delta,
            seg_overhead,
            e_sl_per_definite_bit: calibration.e_sl_per_definite_bit,
            sl_gated: calibration.sl_gated,
            periph: PeripheralModel::default(),
            t_search: model.search_delay(),
        }
    }

    /// The design this model is calibrated for.
    pub fn kind(&self) -> DesignKind {
        self.kind
    }

    /// Array row count the peripheral terms scale with.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Word width in digits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Expected row energy at `k` mismatches (J).
    pub fn row_energy(&self, k: usize) -> f64 {
        self.row_lut[k.min(self.width)]
    }

    /// Worst-case search latency of the array (s).
    pub fn search_latency(&self) -> f64 {
        self.t_search
    }

    /// Exact energy of one query (J) from its per-row mismatch histogram.
    ///
    /// `hist[k]` counts rows with `k` mismatches (summing to the array row
    /// count); `definite` and `toggles` are the query's definite-digit and
    /// SL-pair-transition counts.
    pub fn energy_from_hist(&self, hist: &[u64], definite: u32, toggles: u32) -> f64 {
        let mut rows_energy = 0.0;
        let mut stages_total = 0.0;
        for (k, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let c = count as f64;
            rows_energy += c * self.row_lut[k.min(self.width)];
            stages_total += c * self.stages_lut[k.min(self.width)];
        }
        self.finish(rows_energy, stages_total, definite, toggles)
    }

    /// Aggregate-metered energy of one query (J): `matches` rows at `k = 0`
    /// and the remaining rows sharing `sum_k` total mismatches via the
    /// calibration-derived affine fits.
    pub fn energy_from_aggregate(
        &self,
        matches: u64,
        sum_k: u64,
        definite: u32,
        toggles: u32,
    ) -> f64 {
        let missing = self.rows as f64 - matches as f64;
        let (ae, be) = self.fit_energy;
        let (a_s, b_s) = self.fit_stages;
        let rows_energy = matches as f64 * self.row_lut[0] + ae * missing + be * sum_k as f64;
        let stages_total = matches as f64 * self.stages_lut[0] + a_s * missing + b_s * sum_k as f64;
        self.finish(rows_energy, stages_total, definite, toggles)
    }

    /// Applies the SL and peripheral terms shared by both metering paths.
    fn finish(&self, mut rows_energy: f64, stages_total: f64, definite: u32, toggles: u32) -> f64 {
        let rows = self.rows as f64;
        let stages_avg = stages_total / rows.max(1.0);
        let toggled_lines = if self.sl_gated {
            rows_energy += f64::from(toggles) * self.e_sl_per_definite_bit * rows;
            f64::from(toggles)
        } else {
            f64::from(definite)
        };
        rows_energy
            + self
                .periph
                .search_energy(self.rows, toggled_lines, stages_avg)
    }

    /// Position-aware row energy (J) for one stored word against one query.
    ///
    /// Flat designs reduce to [`CostModel::row_energy`]. Segmented designs
    /// walk the segments in evaluation order and stop at the first one
    /// containing a definite-definite mismatch, exactly like the circuit
    /// does — this is the path the fig. 6 agreement test exercises, where
    /// the hypergeometric average over uniform mismatch placement would
    /// misstate a specific placement. The terminating segment's energy is
    /// its clean energy plus a mismatch delta interpolated (on the local
    /// mismatch count) from the calibration's measured spread-mismatch
    /// sweep — the per-stage `e_mismatch` probes only cover the segment
    /// the calibration's single mismatch landed in, while the sweep pins
    /// down how the delta shrinks as more cells in one segment discharge
    /// the match line together.
    pub fn positional_row_energy(&self, stored: &TernaryWord, query: &TernaryWord) -> f64 {
        if self.seg_widths.len() <= 1 {
            return self.row_energy(stored.mismatch_count(query));
        }
        let sd = stored.digits();
        let qd = query.digits();
        let mut energy = self.seg_overhead;
        let mut start = 0usize;
        for (s, &w) in self.seg_widths.iter().enumerate() {
            let m = (start..start + w)
                .filter(|&j| sd[j] != Ternary::X && qd[j] != Ternary::X && sd[j] != qd[j])
                .count();
            if m > 0 {
                return energy + self.seg_e_match[s] + self.miss_delta(m);
            }
            energy += self.seg_e_match[s];
            start += w;
        }
        energy
    }

    /// Mismatch-energy delta for a segment with `m` mismatching cells:
    /// piecewise-linear interpolation over the measured `seg_delta` points,
    /// clamped at both ends.
    fn miss_delta(&self, m: usize) -> f64 {
        let pts = &self.seg_delta;
        let Some(&(first_m, first_d)) = pts.first() else {
            return 0.0;
        };
        let x = m as f64;
        if x <= first_m {
            return first_d;
        }
        for pair in pts.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            if x <= x1 {
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        pts.last().map_or(0.0, |&(_, d)| d)
    }
}

/// Replays the calibration's spread-mismatch energy sweep against the
/// segment map to extract `(m, delta)` points: for each measured `(k, e)`
/// with `k ≥ 1`, the mismatch positions of `with_spread_mismatches(k)`
/// locate the first dirty segment and its local mismatch count `m`; the
/// delta is whatever energy the measurement carries beyond the clean
/// prefix. Points sharing an `m` (e.g. `k = 1` and `k = 2` both landing a
/// single mismatch in their first dirty segment) are averaged.
fn derive_seg_delta(
    calibration: &RowCalibration,
    seg_widths: &[usize],
    seg_e_match: &[f64],
    seg_overhead: f64,
) -> Vec<(f64, f64)> {
    let width = calibration.width;
    let mut points: Vec<(usize, f64, u32)> = Vec::new();
    for &(k, e) in &calibration.energy_vs_mismatches {
        if k == 0 || k > width {
            continue;
        }
        // Mismatch positions of the calibration's spread pattern (matches
        // `TernaryWord::with_spread_mismatches` on a fully definite word).
        let positions: Vec<usize> = (0..k)
            .map(|j| (j * width / k + width / (2 * k)).min(width - 1))
            .collect();
        let mut start = 0usize;
        for (s, &w) in seg_widths.iter().enumerate() {
            let m = positions
                .iter()
                .filter(|&&p| p >= start && p < start + w)
                .count();
            if m > 0 {
                let prefix: f64 = seg_e_match[..s].iter().sum();
                let delta = e - seg_overhead - prefix - seg_e_match[s];
                match points.iter_mut().find(|p| p.0 == m) {
                    Some(p) => {
                        p.1 += delta;
                        p.2 += 1;
                    }
                    None => points.push((m, delta, 1)),
                }
                break;
            }
            start += w;
        }
    }
    points.sort_unstable_by_key(|p| p.0);
    if points.is_empty() {
        // No mismatch sweep (degenerate calibration): fall back to the
        // largest per-stage measured delta.
        let max_delta = calibration
            .stages
            .iter()
            .map(|s| s.e_mismatch - s.e_match)
            .fold(0.0f64, f64::max);
        return vec![(1.0, max_delta)];
    }
    points
        .into_iter()
        .map(|(m, sum, n)| (m as f64, sum / f64::from(n)))
        .collect()
}

/// Weighted least-squares affine fit `a + b·k` of `lut[k]` over `k ≥ 1`,
/// weighted by the binomial coefficient `C(width, k)` so the fit is tight
/// where random content actually puts the mass (mid-range `k`).
fn affine_fit_binomial(lut: &[f64], width: usize) -> (f64, f64) {
    let mut sw = 0.0;
    let mut swx = 0.0;
    let mut swy = 0.0;
    let mut swxx = 0.0;
    let mut swxy = 0.0;
    let mut w = 1.0f64;
    for (k, &y) in lut.iter().enumerate().take(width + 1).skip(1) {
        // C(width, k) built incrementally: C(w, k) = C(w, k-1)·(w-k+1)/k.
        w *= (width - k + 1) as f64 / k as f64;
        let x = k as f64;
        sw += w;
        swx += w * x;
        swy += w * y;
        swxx += w * x * x;
        swxy += w * x * y;
    }
    let det = sw * swxx - swx * swx;
    if det.abs() < f64::MIN_POSITIVE {
        let a = if sw > 0.0 { swy / sw } else { 0.0 };
        return (a, 0.0);
    }
    let a = (swxx * swy - swx * swxy) / det;
    let b = (sw * swxy - swx * swy) / det;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcam_array::StageCalibration;

    fn flat_calibration(width: usize) -> RowCalibration {
        RowCalibration {
            kind: DesignKind::FeFet2T,
            width,
            energy_vs_mismatches: vec![(0, 1e-15), (1, 3e-15), (width, 4e-15)],
            t_match: 1e-9,
            t_mismatch_1: 0.6e-9,
            margin_match: 0.2,
            margin_mismatch_1: 0.25,
            e_sl_per_definite_bit: 0.1e-15,
            sl_gated: false,
            stages: Vec::new(),
            e_write_per_bit: None,
        }
    }

    fn segmented_calibration(width: usize) -> RowCalibration {
        let seg = width / 4;
        let stage = |e_mismatch: f64| StageCalibration {
            width: seg,
            e_match: 0.5e-15,
            e_mismatch,
            t_match: 0.8e-9,
            t_mismatch: 0.5e-9,
        };
        RowCalibration {
            kind: DesignKind::EaMlSegmented,
            width,
            energy_vs_mismatches: vec![(0, 2e-15), (1, 2.6e-15), (width, 1.6e-15)],
            sl_gated: true,
            // Only stage 2 carries a measured mismatch energy, like the
            // real calibration (k = 1 spread mismatch lands mid-word).
            stages: vec![
                stage(0.5e-15),
                stage(0.5e-15),
                stage(1.4e-15),
                stage(0.5e-15),
            ],
            ..flat_calibration(width)
        }
    }

    #[test]
    fn exact_hist_matches_array_model_average() {
        use ftcam_workloads::MismatchHistogram;
        let calib = flat_calibration(8);
        let rows = 16usize;
        let cost = CostModel::from_calibration(DesignKind::FeFet2T, &calib, rows);
        let model = ArrayModel::new(ArrayParams::new(DesignKind::FeFet2T, rows, 8), calib);
        // One query's histogram: 1 match, the rest spread over k.
        let mut hist = vec![0u64; 9];
        hist[0] = 1;
        hist[3] = 10;
        hist[8] = 5;
        let mut golden_hist = MismatchHistogram::new(8);
        for (k, &c) in hist.iter().enumerate() {
            for _ in 0..c {
                golden_hist.record(k);
            }
        }
        let golden = model.average_search_energy(&golden_hist, None);
        // Non-gated: ArrayModel with `None` toggles charges full width.
        let engine = cost.energy_from_hist(&hist, 8, 8);
        assert!(
            (engine - golden).abs() < 1e-24,
            "engine {engine:.6e} vs golden {golden:.6e}"
        );
    }

    #[test]
    fn aggregate_is_close_to_exact_for_mixed_histograms() {
        let calib = segmented_calibration(16);
        let cost = CostModel::from_calibration(DesignKind::EaMlSegmented, &calib, 64);
        let mut hist = vec![0u64; 17];
        hist[0] = 2;
        hist[5] = 20;
        hist[8] = 30;
        hist[12] = 12;
        let matches = hist[0];
        let sum_k: u64 = hist.iter().enumerate().map(|(k, &c)| k as u64 * c).sum();
        let exact = cost.energy_from_hist(&hist, 16, 4);
        let agg = cost.energy_from_aggregate(matches, sum_k, 16, 4);
        let rel = (agg - exact).abs() / exact;
        assert!(rel < 0.10, "aggregate off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn positional_energy_stops_at_first_dirty_segment() {
        let calib = segmented_calibration(16);
        let cost = CostModel::from_calibration(DesignKind::EaMlSegmented, &calib, 64);
        let stored: TernaryWord = "1010101010101010".parse().unwrap();
        // Clean row: all four segments at match energy (= measured k = 0).
        assert!((cost.positional_row_energy(&stored, &stored) - 2e-15).abs() < 1e-22);
        // Single-mismatch delta replayed from the sweep: the measured
        // k = 1 point (2.6 fJ) puts its mismatch in segment 2 after a
        // 1.0 fJ clean prefix and a 0.5 fJ dirty-segment clean term, so
        // delta(1) = 1.1 fJ regardless of which segment the query hits.
        let delta = 2.6e-15 - 2.0 * 0.5e-15 - 0.5e-15;
        let q0: TernaryWord = "0010101010101010".parse().unwrap();
        let e0 = cost.positional_row_energy(&stored, &q0);
        assert!((e0 - (0.5e-15 + delta)).abs() < 1e-22, "e0 = {e0:.3e}");
        // Mismatch only in segment 2: reproduces the measured k = 1 sweep
        // point exactly.
        let q2: TernaryWord = "1010101000101010".parse().unwrap();
        let e2 = cost.positional_row_energy(&stored, &q2);
        assert!((e2 - 2.6e-15).abs() < 1e-22, "e2 = {e2:.3e}");
        // Fully mismatching query reproduces the measured k = width point.
        let q_full = stored.with_spread_mismatches(16);
        let e_full = cost.positional_row_energy(&stored, &q_full);
        assert!((e_full - 1.6e-15).abs() < 1e-22, "e_full = {e_full:.3e}");
    }

    #[test]
    fn affine_fit_recovers_exact_affine_luts() {
        let lut: Vec<f64> = (0..=16).map(|k| 2.0 + 0.5 * k as f64).collect();
        let (a, b) = affine_fit_binomial(&lut, 16);
        assert!((a - 2.0).abs() < 1e-9 && (b - 0.5).abs() < 1e-9);
    }
}
