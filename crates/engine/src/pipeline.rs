//! Batched, sharded replay through the `ftcam-core` executor.
//!
//! The stream is processed in batches. Per batch, packing and search-line
//! toggle tracking run serially (toggles are a stream property — they chain
//! across batch boundaries through the previous query). The per-shard table
//! scans — the `O(rows)` part — fan out through
//! [`Executor`], one job per shard, and the per-query
//! partial outcomes are merged **in shard order** and recorded **in query
//! order**, so the accumulated [`EngineStats`] are bit-identical to a
//! serial [`crate::ReplaySession`] for every thread count; only
//! `wall_nanos` differs.

use std::convert::Infallible;
use std::time::Instant;

use ftcam_core::Executor;
use ftcam_workloads::TernaryWord;

use crate::engine::{EngineStats, QueryOutcome, TcamEngine};
use crate::query::PackedQuery;

/// Default queries per batch.
pub const DEFAULT_BATCH: usize = 256;

/// Replays `queries` against `engine`, fanning per-shard scans out over
/// `exec`. Returns stats identical (modulo `wall_nanos`) to feeding the
/// same stream through [`TcamEngine::session`].
pub fn replay(
    engine: &TcamEngine,
    queries: &[TernaryWord],
    exec: &Executor,
    batch: usize,
) -> EngineStats {
    let started = Instant::now();
    let batch = batch.max(1);
    let shards = engine.shards();
    let shard_ids: Vec<usize> = (0..shards.len()).collect();
    let mut stats = EngineStats::new(engine.designs());
    let mut prev: Option<PackedQuery> = None;
    let mut base = 0u64;
    for chunk in queries.chunks(batch) {
        // Serial prologue: pack the batch and chain toggles through `prev`.
        let packed: Vec<PackedQuery> = chunk.iter().map(PackedQuery::from_word).collect();
        let mut toggles = Vec::with_capacity(packed.len());
        for q in &packed {
            toggles.push(q.toggles_from(prev.as_ref()));
            prev = Some(q.clone());
        }
        // Fan out: one job per shard, each scanning the whole batch.
        let result: Result<Vec<Vec<QueryOutcome>>, Infallible> = exec.run(&shard_ids, |_, &s| {
            let shard = &shards[s];
            Ok(packed
                .iter()
                .enumerate()
                .map(|(j, q)| shard.outcome(q, engine.meter_exactly(base + j as u64)))
                .collect())
        });
        let parts = match result {
            Ok(parts) => parts,
            Err(never) => match never {},
        };
        // Merge shard partials per query (shard order), record (query
        // order) — the same fold order as the serial session.
        for (j, q) in packed.iter().enumerate() {
            let mut merged = QueryOutcome::default();
            for shard_part in &parts {
                merged.merge(&shard_part[j]);
            }
            let index = base + j as u64;
            stats.record(
                &merged,
                q.definite_count(),
                toggles[j],
                engine.is_metered(index),
                engine.designs(),
            );
        }
        base += chunk.len() as u64;
    }
    stats.wall_nanos = started.elapsed().as_nanos() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Metering;
    use crate::engine::EngineConfig;
    use ftcam_workloads::TcamTable;

    fn strip_wall(mut s: EngineStats) -> EngineStats {
        s.wall_nanos = 0;
        s
    }

    #[test]
    fn pipeline_equals_session_for_any_thread_and_shard_count() {
        let mut table = TcamTable::new(12);
        for i in 0..500u64 {
            table.push(TernaryWord::prefix(i, 4 + (i % 9) as usize, 12));
        }
        let queries: Vec<TernaryWord> = (0..300u64)
            .map(|i| TernaryWord::from_bits(i.wrapping_mul(2654435761) % 4096, 12))
            .collect();
        for metering in [
            Metering::Exact,
            Metering::Aggregate,
            Metering::Sampled { period: 7 },
        ] {
            for shard_count in [1, 3] {
                let engine = TcamEngine::new(
                    &table,
                    EngineConfig {
                        shards: shard_count,
                        metering,
                        index_min_rows: 64,
                    },
                );
                let mut session = engine.session();
                session.replay(&queries);
                let serial = strip_wall(session.finish());
                for threads in [1, 2, 4] {
                    let exec = Executor::new(threads);
                    let piped = strip_wall(replay(&engine, &queries, &exec, 64));
                    assert_eq!(
                        piped, serial,
                        "metering {metering:?}, {shard_count} shards, {threads} threads"
                    );
                }
            }
        }
    }
}
