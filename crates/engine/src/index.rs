//! Prefix-stride bucket index over a bit-plane table.
//!
//! Routing and classifier tables are overwhelmingly prefix-shaped: the top
//! digits of almost every row are definite. The index buckets rows by the
//! value of their top `K` digits (`2^K` buckets). A row with up to
//! [`MAX_EXPAND_BITS`] wildcard digits inside the top `K` is replicated into
//! every bucket it can match; rows more wildcarded than that go into a small
//! shared sub-table consulted on every lookup. A query whose top `K` digits
//! are all definite then only scans `bucket ∪ shared` — typically a couple
//! of 64-row blocks — instead of the whole table. Queries with an `X` in
//! the top `K` fall back to the caller's full scan.
//!
//! Buckets store *global* row ids in ascending order, so priority and LPM
//! semantics are identical to the full scan.

use ftcam_workloads::{TcamTable, Ternary};

use crate::query::PackedQuery;
use crate::table::BitPlaneTable;

/// Maximum number of wildcard digits in the top `K` a row may have and
/// still be replicated into buckets (replication factor `2^bits`).
pub const MAX_EXPAND_BITS: usize = 4;

/// Hard cap on the stride, bounding the bucket directory at `2^14` entries.
const MAX_STRIDE: usize = 14;

/// Rows-per-bucket target used to size the stride.
const TARGET_BUCKET_ROWS: usize = 64;

/// A `2^K`-bucket prefix index over one table shard.
#[derive(Debug, Clone)]
pub struct PrefixIndex {
    stride: usize,
    buckets: Vec<BitPlaneTable>,
    /// Rows too wildcarded in the top `K` to replicate; scanned on every
    /// indexed lookup.
    shared: BitPlaneTable,
}

impl PrefixIndex {
    /// Stride that targets ~[`TARGET_BUCKET_ROWS`] rows per bucket.
    pub fn stride_for(rows: usize, width: usize) -> usize {
        let mut k = 0usize;
        while k < MAX_STRIDE && k < width && (rows >> k) > TARGET_BUCKET_ROWS {
            k += 1;
        }
        k
    }

    /// Builds an index over the rows of `table` with ids in `ids`
    /// (ascending). Returns `None` when the stride degenerates to zero
    /// (table too small to be worth indexing).
    pub fn build(table: &TcamTable, ids: &[u32]) -> Option<Self> {
        let stride = Self::stride_for(ids.len(), table.width());
        if stride == 0 {
            return None;
        }
        let rows = table.rows();
        let mut bucket_ids: Vec<Vec<u32>> = vec![Vec::new(); 1 << stride];
        let mut shared_ids: Vec<u32> = Vec::new();
        for &gid in ids {
            let digits = rows[gid as usize].digits();
            // Wildcard positions within the top `stride` digits.
            let xs: Vec<usize> = (0..stride).filter(|&j| digits[j] == Ternary::X).collect();
            if xs.len() > MAX_EXPAND_BITS {
                shared_ids.push(gid);
                continue;
            }
            let mut base = 0usize;
            for &d in digits.iter().take(stride) {
                base = (base << 1) | usize::from(d == Ternary::One);
            }
            // Enumerate every assignment of the wildcard digits.
            for combo in 0..(1usize << xs.len()) {
                let mut key = base;
                for (b, &pos) in xs.iter().enumerate() {
                    if combo >> b & 1 == 1 {
                        key |= 1 << (stride - 1 - pos);
                    }
                }
                bucket_ids[key].push(gid);
            }
        }
        let buckets = bucket_ids
            .into_iter()
            .map(|ids| BitPlaneTable::from_row_ids(table, ids))
            .collect();
        Some(Self {
            stride,
            buckets,
            shared: BitPlaneTable::from_row_ids(table, shared_ids),
        })
    }

    /// The index stride `K`.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The bucket + shared sub-tables covering `q`, or `None` when the
    /// query has a wildcard in the top `K` digits (caller must full-scan).
    #[inline]
    fn route(&self, q: &PackedQuery) -> Option<&BitPlaneTable> {
        q.top_value(self.stride).map(|key| &self.buckets[key])
    }

    /// Indexed priority search; `None` means "not routable, full-scan".
    pub fn first_match(&self, q: &PackedQuery) -> Option<Option<u32>> {
        let bucket = self.route(q)?;
        let a = bucket.first_match(q);
        let b = self.shared.first_match(q);
        Some(match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        })
    }

    /// Indexed match count; `None` means "not routable, full-scan".
    pub fn match_count(&self, q: &PackedQuery) -> Option<u64> {
        let bucket = self.route(q)?;
        Some(bucket.match_count(q) + self.shared.match_count(q))
    }

    /// Indexed LPM; `None` means "not routable, full-scan".
    pub fn lpm(&self, q: &PackedQuery) -> Option<Option<(u32, u16)>> {
        let bucket = self.route(q)?;
        let a = bucket.lpm(q);
        let b = self.shared.lpm(q);
        Some(match (a, b) {
            (Some((ga, wa)), Some((gb, wb))) => {
                if (wa, ga) <= (wb, gb) {
                    Some((ga, wa))
                } else {
                    Some((gb, wb))
                }
            }
            (x, y) => x.or(y),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcam_workloads::TernaryWord;

    fn prefix_table(rows: usize, width: usize) -> TcamTable {
        let mut t = TcamTable::new(width);
        for i in 0..rows {
            // Prefixes of varying length so some rows overlap.
            let len = 4 + (i % (width - 4));
            t.push(TernaryWord::prefix(i as u64, len, width));
        }
        t
    }

    #[test]
    fn indexed_lookups_agree_with_full_scan() {
        let t = prefix_table(600, 16);
        let full = BitPlaneTable::from_table(&t);
        let idx = PrefixIndex::build(&t, full.row_ids()).expect("stride > 0");
        assert!(idx.stride() > 0);
        for v in (0..1u64 << 16).step_by(97) {
            let q = PackedQuery::from_word(&TernaryWord::from_bits(v, 16));
            assert_eq!(idx.first_match(&q), Some(full.first_match(&q)), "v={v}");
            assert_eq!(idx.match_count(&q), Some(full.match_count(&q)), "v={v}");
            assert_eq!(idx.lpm(&q), Some(full.lpm(&q)), "v={v}");
        }
    }

    #[test]
    fn wildcard_top_bits_are_not_routable() {
        let t = prefix_table(600, 16);
        let full = BitPlaneTable::from_table(&t);
        let idx = PrefixIndex::build(&t, full.row_ids()).expect("stride > 0");
        let q = PackedQuery::from_word(&"XXXXXXXXXXXXXXXX".parse().unwrap());
        assert_eq!(idx.first_match(&q), None);
        assert_eq!(idx.lpm(&q), None);
    }

    #[test]
    fn heavily_wildcarded_rows_land_in_shared_subtable() {
        let mut t = TcamTable::new(16);
        // One catch-all row plus enough definite rows to force a stride.
        t.push(TernaryWord::all_x(16));
        for i in 0..500u64 {
            t.push(TernaryWord::from_bits(i, 16));
        }
        let full = BitPlaneTable::from_table(&t);
        let idx = PrefixIndex::build(&t, full.row_ids()).expect("stride > 0");
        // The catch-all must win priority for every query it matches.
        let q = PackedQuery::from_word(&TernaryWord::from_bits(42, 16));
        assert_eq!(idx.first_match(&q), Some(Some(0)));
        // But LPM prefers the exact row.
        assert_eq!(idx.lpm(&q), Some(Some((43, 0))));
    }

    #[test]
    fn tiny_tables_skip_indexing() {
        let t = prefix_table(10, 16);
        let full = BitPlaneTable::from_table(&t);
        assert!(PrefixIndex::build(&t, full.row_ids()).is_none());
    }
}
