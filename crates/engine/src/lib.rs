//! `ftcam-engine` — a calibrated bit-parallel TCAM search engine for
//! workload-scale replay.
//!
//! The golden model in `ftcam-workloads` answers one query by walking every
//! row digit-by-digit — perfect for correctness, hopeless for replaying
//! millions of queries against hundred-thousand-row tables. This crate
//! stores ternary words in a bit-plane layout ([`BitPlaneTable`]: two `u64`
//! planes per 64 rows per column) so priority match, longest-prefix match,
//! match counting, mismatch histograms and nearest-Hamming queries run as
//! branch-free column sweeps, optionally accelerated by a prefix-stride
//! bucket index ([`PrefixIndex`]).
//!
//! Every replayed query is metered by a [`CostModel`] exported from the
//! same circuit calibration the array-level experiments use
//! (`ftcam_array::CalibrationCache` → [`CostModel::from_calibration`]), so
//! engine fJ/query agrees with the fig. 6 row-energy curves and fig. 9
//! workload numbers — the agreement is tested, not assumed
//! (`tests/calibration_agreement.rs`).
//!
//! Replay runs serially through [`TcamEngine::session`] or sharded through
//! [`pipeline::replay`], which fans per-shard scans out over the
//! `ftcam-core` executor while keeping the accumulated [`EngineStats`]
//! bit-identical for every thread count.
//!
//! # Example
//!
//! ```no_run
//! use ftcam_core::Evaluator;
//! use ftcam_engine::{EngineConfig, WorkloadReplay};
//! use ftcam_workloads::IpRoutingWorkloadParams;
//!
//! # fn main() -> Result<(), ftcam_cells::CellError> {
//! let eval = Evaluator::quick();
//! let replay = WorkloadReplay::ip_routing(&IpRoutingWorkloadParams::default());
//! let engine = replay
//!     .engine(EngineConfig::default())
//!     .with_design(&eval.calibrations().get(ftcam_cells::DesignKind::EaFull, 32)?);
//! let mut session = engine.session();
//! session.replay(&replay.queries(0..256));
//! let stats = session.finish();
//! println!(
//!     "{:.2} pJ/query",
//!     stats.pj_per_query(ftcam_cells::DesignKind::EaFull).unwrap_or(f64::NAN)
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod engine;
pub mod experiments;
mod index;
pub mod pipeline;
mod query;
mod replay;
mod table;

pub use cost::{CostModel, Metering};
pub use engine::{
    DesignStats, EngineConfig, EngineStats, ReplaySession, TcamEngine, MATCH_HIST_BUCKETS,
};
pub use index::{PrefixIndex, MAX_EXPAND_BITS};
pub use query::PackedQuery;
pub use replay::{AnySource, WorkloadReplay};
pub use table::{BitPlaneTable, BLOCK_ROWS};
