//! E17 — "fig. 9 at scale": per-design search energy per query on
//! workload-scale IP routing tables, replayed through the calibrated
//! engine instead of the `O(rows × queries)` golden-model histogram pass.
//!
//! The circuit-level fig. 9 experiment (`e10`) evaluates a few hundred
//! rows; this driver replays tens of thousands to a million rows by
//! scanning bit-plane shards through the executor and metering every (or
//! every *n*-th) query with the calibration-exported [`CostModel`]. The
//! scan is shared across designs: the per-query mismatch histogram is
//! computed once and priced per design.
//!
//! [`CostModel`]: crate::CostModel

use ftcam_cells::{CellError, DesignKind};
use ftcam_core::experiments::instrumented;
use ftcam_core::{Artifact, Evaluator, Table};
use ftcam_workloads::IpRoutingWorkloadParams;

use crate::cost::Metering;
use crate::engine::EngineConfig;
use crate::pipeline;
use crate::replay::WorkloadReplay;

/// Parameters for the scaled workload-replay experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Routing-table sizes to sweep (rows).
    pub row_counts: Vec<usize>,
    /// Word width (32 = IPv4).
    pub width: usize,
    /// Queries replayed per table.
    pub queries: u64,
    /// Designs to price.
    pub designs: Vec<DesignKind>,
    /// Engine shard count (fixed fan-out width; stats are thread-count
    /// invariant for any value).
    pub shards: usize,
    /// Energy metering mode.
    pub metering: Metering,
    /// Queries per pipeline batch.
    pub batch: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            row_counts: vec![1024, 4096],
            width: 32,
            queries: 2048,
            designs: vec![
                DesignKind::FeFet2T,
                DesignKind::EaSlGated,
                DesignKind::EaMlSegmented,
                DesignKind::EaFull,
            ],
            shards: 4,
            metering: Metering::Exact,
            batch: 256,
        }
    }
}

impl Params {
    /// Workload-scale preset: 64k to 1M routing entries, sampled metering.
    pub fn full() -> Self {
        Self {
            row_counts: vec![65_536, 262_144, 1_048_576],
            queries: 4096,
            shards: 8,
            metering: Metering::Sampled { period: 31 },
            ..Self::default()
        }
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn run(eval: &Evaluator, params: &Params) -> Result<Artifact, CellError> {
    let mut table = Table::new(
        "e17",
        "Engine-replayed search energy per query on scaled IP routing tables (pJ)",
        params.row_counts.iter().map(|r| r.to_string()).collect(),
    );
    // One calibration per design (width-keyed, cached); shared across all
    // table sizes.
    let calibs = params
        .designs
        .iter()
        .map(|&kind| eval.calibrations().get(kind, params.width))
        .collect::<Result<Vec<_>, _>>()?;
    let mut cells: Vec<Vec<f64>> = vec![Vec::new(); params.designs.len()];
    let mut notes: Vec<String> = Vec::new();
    for &rows in &params.row_counts {
        let replay = WorkloadReplay::ip_routing(&IpRoutingWorkloadParams {
            entries: rows,
            queries: params.queries as usize,
            width: params.width,
            ..IpRoutingWorkloadParams::default()
        });
        let mut engine = replay.engine(EngineConfig {
            shards: params.shards,
            metering: params.metering,
            ..EngineConfig::default()
        });
        for calib in &calibs {
            engine = engine.with_design(calib);
        }
        let queries = replay.queries(0..params.queries);
        let stats = pipeline::replay(&engine, &queries, &eval.executor(), params.batch);
        for (di, &kind) in params.designs.iter().enumerate() {
            cells[di].push(stats.pj_per_query(kind).unwrap_or(f64::NAN));
        }
        notes.push(format!(
            "{rows} rows: {:.0} queries/s wall-clock, {}/{} queries metered, \
             hit rate {:.1}%",
            stats.queries_per_sec(),
            stats.metered_queries,
            stats.queries,
            100.0 * stats.hits as f64 / stats.queries.max(1) as f64,
        ));
    }
    for (di, &kind) in params.designs.iter().enumerate() {
        table.push(kind.key(), cells[di].clone());
    }
    table.note(format!(
        "metering {:?}, {} shards, batch {}; energy from the calibration-exported \
         cost model ({} queries per table)",
        params.metering, params.shards, params.batch, params.queries
    ));
    for note in notes {
        table.note(note);
    }
    Ok(Artifact::Table(table))
}

/// [`run`] with quick/full preset selection and the standard experiment
/// instrumentation (exec stats attached to the artifact) — the entry point
/// the `experiments` binary dispatches to for id `e17`.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn run_instrumented(eval: &Evaluator, full: bool) -> Result<Artifact, CellError> {
    let params = if full {
        Params::full()
    } else {
        Params::default()
    };
    instrumented(eval, |eval| run(eval, &params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preset_prices_every_design() {
        let eval = Evaluator::quick();
        let params = Params {
            row_counts: vec![256],
            queries: 64,
            designs: vec![DesignKind::FeFet2T, DesignKind::EaFull],
            ..Params::default()
        };
        let Artifact::Table(t) = run(&eval, &params).unwrap() else {
            panic!("expected table")
        };
        let base = t.cell("fefet2t", "256").unwrap();
        let full = t.cell("ea-full", "256").unwrap();
        assert!(base.is_finite() && full.is_finite());
        assert!(
            full < base,
            "ea-full {full:.3} pJ must beat fefet2t {base:.3} pJ"
        );
    }

    #[test]
    fn instrumented_run_attaches_exec_stats() {
        let eval = Evaluator::quick().with_threads(2);
        let artifact = run_instrumented(&eval, false).unwrap();
        let stats = artifact.exec().expect("exec stats attached");
        assert_eq!(stats.threads, 2);
        assert!(stats.jobs > 0, "replay must route through the executor");
    }
}
