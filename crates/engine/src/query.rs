//! Packed (bitwise) query representation.
//!
//! A ternary query of `W` digits packs into two bitmasks — `care` (digit is
//! definite) and `pattern` (digit is `1`) — plus per-column broadcast masks
//! (`0` or `!0`) that the column kernels consume directly, so the inner
//! match loop is pure `u64` logic with no per-digit branching.

use ftcam_workloads::{Ternary, TernaryWord};

/// A query word packed for the bit-plane kernels.
///
/// Digit `j` (most significant first, matching [`TernaryWord`] indexing)
/// lands in word `j / 64`, bit `j % 64` of the compact masks, and in slot
/// `j` of the broadcast masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedQuery {
    width: usize,
    /// Compact mask: bit set where the digit is definite (not `X`).
    care: Vec<u64>,
    /// Compact mask: bit set where the digit is `1` (subset of `care`).
    pattern: Vec<u64>,
    /// Per-column broadcast of the care bit (`0` or `!0`).
    care_bcast: Vec<u64>,
    /// Per-column broadcast of the pattern bit (`0` or `!0`).
    pattern_bcast: Vec<u64>,
}

impl PackedQuery {
    /// Packs a ternary word.
    pub fn from_word(word: &TernaryWord) -> Self {
        let width = word.width();
        let words = width.div_ceil(64).max(1);
        let mut care = vec![0u64; words];
        let mut pattern = vec![0u64; words];
        let mut care_bcast = vec![0u64; width];
        let mut pattern_bcast = vec![0u64; width];
        for (j, &d) in word.digits().iter().enumerate() {
            match d {
                Ternary::X => {}
                Ternary::Zero => {
                    care[j / 64] |= 1 << (j % 64);
                    care_bcast[j] = !0;
                }
                Ternary::One => {
                    care[j / 64] |= 1 << (j % 64);
                    pattern[j / 64] |= 1 << (j % 64);
                    care_bcast[j] = !0;
                    pattern_bcast[j] = !0;
                }
            }
        }
        Self {
            width,
            care,
            pattern,
            care_bcast,
            pattern_bcast,
        }
    }

    /// Query width in digits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of definite (non-`X`) digits.
    pub fn definite_count(&self) -> u32 {
        self.care.iter().map(|w| w.count_ones()).sum()
    }

    /// Broadcast care mask for column `col` (`0` or `!0`).
    #[inline]
    pub fn care_mask(&self, col: usize) -> u64 {
        self.care_bcast[col]
    }

    /// Broadcast pattern mask for column `col` (`0` or `!0`).
    #[inline]
    pub fn pattern_mask(&self, col: usize) -> u64 {
        self.pattern_bcast[col]
    }

    /// `true` if column `col` is definite.
    #[inline]
    pub fn is_definite(&self, col: usize) -> bool {
        self.care_bcast[col] != 0
    }

    /// `true` if column `col` is a definite `1`.
    #[inline]
    pub fn bit(&self, col: usize) -> bool {
        self.pattern_bcast[col] != 0
    }

    /// Search-line pair transitions against the previous query of a stream,
    /// matching [`ftcam_workloads::ToggleStats`] semantics exactly: each
    /// digit whose `(SL, SLB)` drive pair changed counts once, and the
    /// first query of a stream charges every definite digit from the idle
    /// (all-low) state.
    pub fn toggles_from(&self, prev: Option<&PackedQuery>) -> u32 {
        let Some(prev) = prev else {
            return self.definite_count();
        };
        debug_assert_eq!(self.width, prev.width);
        let mut toggles = 0u32;
        for i in 0..self.care.len() {
            // SL is driven high on a definite 1, SLB on a definite 0.
            let sl_c = self.care[i] & self.pattern[i];
            let slb_c = self.care[i] & !self.pattern[i];
            let sl_p = prev.care[i] & prev.pattern[i];
            let slb_p = prev.care[i] & !prev.pattern[i];
            toggles += ((sl_c ^ sl_p) | (slb_c ^ slb_p)).count_ones();
        }
        toggles
    }

    /// The value of the top `k` digits (most significant first), or `None`
    /// if any of them is `X` — the prefix-stride index key.
    pub fn top_value(&self, k: usize) -> Option<usize> {
        debug_assert!(k <= self.width);
        let mut value = 0usize;
        for j in 0..k {
            if self.care_bcast[j] == 0 {
                return None;
            }
            value = (value << 1) | usize::from(self.pattern_bcast[j] != 0);
        }
        Some(value)
    }
}

impl From<&TernaryWord> for PackedQuery {
    fn from(word: &TernaryWord) -> Self {
        Self::from_word(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcam_workloads::ToggleStats;

    #[test]
    fn packing_round_trips_digit_semantics() {
        let w: TernaryWord = "10X1".parse().unwrap();
        let q = PackedQuery::from_word(&w);
        assert_eq!(q.width(), 4);
        assert_eq!(q.definite_count(), 3);
        assert!(q.is_definite(0) && q.bit(0));
        assert!(q.is_definite(1) && !q.bit(1));
        assert!(!q.is_definite(2));
        assert!(q.is_definite(3) && q.bit(3));
    }

    #[test]
    fn wide_words_span_multiple_mask_words() {
        let mut digits = vec![Ternary::Zero; 100];
        digits[0] = Ternary::One;
        digits[70] = Ternary::One;
        digits[99] = Ternary::X;
        let q = PackedQuery::from_word(&TernaryWord::new(digits));
        assert_eq!(q.definite_count(), 99);
        assert!(q.bit(70));
        assert!(!q.is_definite(99));
    }

    #[test]
    fn toggles_match_golden_toggle_stats() {
        let stream: Vec<TernaryWord> = ["1010", "1010", "0110", "XX10", "1111"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let golden = ToggleStats::from_queries(&stream);
        let mut total = 0u64;
        let mut prev: Option<PackedQuery> = None;
        for w in &stream {
            let q = PackedQuery::from_word(w);
            total += u64::from(q.toggles_from(prev.as_ref()));
            prev = Some(q);
        }
        let expect = golden.transitions_per_search() * stream.len() as f64;
        assert_eq!(total as f64, expect);
    }

    #[test]
    fn top_value_extracts_msb_prefix() {
        let q = PackedQuery::from_word(&"1011X".parse().unwrap());
        assert_eq!(q.top_value(0), Some(0));
        assert_eq!(q.top_value(2), Some(0b10));
        assert_eq!(q.top_value(4), Some(0b1011));
        assert_eq!(q.top_value(5), None);
    }
}
