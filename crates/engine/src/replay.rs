//! Workload replay adapters: bridge the `ftcam-workloads` generators to
//! the engine without materialising the full query stream.
//!
//! Each adapter builds the generator's table once and exposes the
//! index-pure [`QuerySource`] so arbitrarily long streams can be replayed
//! (or re-replayed chunk-wise) without holding them in memory.

use ftcam_workloads::{
    HdcQuerySource, HdcWorkload, HdcWorkloadParams, IpRoutingQuerySource, IpRoutingWorkload,
    IpRoutingWorkloadParams, PacketClassifierParams, PacketClassifierWorkload, PacketQuerySource,
    QuerySource, TcamTable, TernaryWord,
};

use crate::engine::{EngineConfig, TcamEngine};

/// A query source from any of the three workload generators.
#[derive(Debug, Clone)]
pub enum AnySource {
    /// IP-routing LPM lookups.
    IpRouting(IpRoutingQuerySource),
    /// Five-tuple packet-classifier lookups.
    Packet(PacketQuerySource),
    /// Noisy hyperdimensional-computing probes.
    Hdc(HdcQuerySource),
}

impl QuerySource for AnySource {
    fn width(&self) -> usize {
        match self {
            Self::IpRouting(s) => s.width(),
            Self::Packet(s) => s.width(),
            Self::Hdc(s) => s.width(),
        }
    }

    fn query_at(&self, index: u64) -> TernaryWord {
        match self {
            Self::IpRouting(s) => s.query_at(index),
            Self::Packet(s) => s.query_at(index),
            Self::Hdc(s) => s.query_at(index),
        }
    }
}

/// A workload bound to the engine: the generated table plus its seed-stable
/// query source.
#[derive(Debug, Clone)]
pub struct WorkloadReplay {
    /// Workload name (appears in reports).
    pub name: String,
    /// The generated TCAM content.
    pub table: TcamTable,
    /// The index-pure query source.
    pub source: AnySource,
}

impl WorkloadReplay {
    /// Builds the IP-routing workload's table and source.
    pub fn ip_routing(params: &IpRoutingWorkloadParams) -> Self {
        let (table, source) = IpRoutingWorkload::new(params.clone()).build();
        Self {
            name: "ip_routing".to_string(),
            table,
            source: AnySource::IpRouting(source),
        }
    }

    /// Builds the packet-classifier workload's table and source.
    pub fn packet(params: &PacketClassifierParams) -> Self {
        let (table, source) = PacketClassifierWorkload::new(params.clone()).build();
        Self {
            name: "packet".to_string(),
            table,
            source: AnySource::Packet(source),
        }
    }

    /// Builds the HDC workload's table and source.
    pub fn hdc(params: &HdcWorkloadParams) -> Self {
        let (table, source) = HdcWorkload::new(params.clone()).build();
        Self {
            name: "hdc".to_string(),
            table,
            source: AnySource::Hdc(source),
        }
    }

    /// Builds an engine over this workload's table.
    pub fn engine(&self, config: EngineConfig) -> TcamEngine {
        TcamEngine::new(&self.table, config)
    }

    /// Materialises queries `range.start..range.end` of the stream.
    pub fn queries(&self, range: std::ops::Range<u64>) -> Vec<TernaryWord> {
        self.source.stream(range).collect()
    }
}

impl QuerySource for WorkloadReplay {
    fn width(&self) -> usize {
        self.source.width()
    }

    fn query_at(&self, index: u64) -> TernaryWord {
        self.source.query_at(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapters_match_the_generators() {
        let params = IpRoutingWorkloadParams {
            queries: 32,
            ..IpRoutingWorkloadParams::default()
        };
        let replay = WorkloadReplay::ip_routing(&params);
        let workload = IpRoutingWorkload::new(params).generate();
        assert_eq!(replay.table, workload.table);
        assert_eq!(replay.queries(0..32), workload.queries);
        assert_eq!(replay.width(), workload.table.width());
    }

    #[test]
    fn replayed_searches_agree_with_golden_table() {
        let replay = WorkloadReplay::packet(&PacketClassifierParams::default());
        let engine = replay.engine(EngineConfig::default());
        for q in replay.queries(0..16) {
            assert_eq!(engine.search(&q), replay.table.search(&q).map(|i| i as u32));
        }
    }

    #[test]
    fn hdc_adapter_builds() {
        let replay = WorkloadReplay::hdc(&HdcWorkloadParams::default());
        let engine = replay.engine(EngineConfig::default());
        let q = replay.query_at(0);
        // Every HDC probe has a nearest stored vector.
        assert!(engine.nearest(&q).is_some());
    }
}
