//! The calibrated TCAM engine: sharded bit-plane storage, query answering
//! and the serial metered replay session.

use ftcam_array::RowCalibration;
use ftcam_cells::DesignKind;
use ftcam_workloads::{TcamTable, TernaryWord};

use crate::cost::{CostModel, Metering};
use crate::index::PrefixIndex;
use crate::query::PackedQuery;
use crate::table::BitPlaneTable;

/// Number of match-count buckets in [`EngineStats::match_hist`]; the last
/// bucket collects queries with `>= MATCH_HIST_BUCKETS - 1` matches.
pub const MATCH_HIST_BUCKETS: usize = 9;

/// Engine construction options.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of contiguous row shards (parallel replay fan-out width).
    /// A fixed parameter — never derived from the thread count — so stats
    /// are identical however many threads execute the shards.
    pub shards: usize,
    /// Energy metering mode for replay sessions.
    pub metering: Metering,
    /// Build a prefix-stride index for shards with at least this many rows.
    pub index_min_rows: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            metering: Metering::Exact,
            index_min_rows: 4096,
        }
    }
}

/// One contiguous row shard: bit-plane storage plus an optional index.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    pub(crate) table: BitPlaneTable,
    pub(crate) index: Option<PrefixIndex>,
}

/// Merged (or per-shard) outcome of one query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct QueryOutcome {
    /// Lowest matching global row id.
    pub(crate) first: Option<u32>,
    /// Number of matching rows.
    pub(crate) matches: u64,
    /// Total mismatch count over all rows.
    pub(crate) sum_k: u64,
    /// Per-row mismatch histogram (exact metering only).
    pub(crate) hist: Option<Vec<u64>>,
}

impl QueryOutcome {
    /// Folds another shard's outcome into this one. Shards must be folded
    /// in ascending shard order so floating-point-free counts and the
    /// histograms merge deterministically.
    pub(crate) fn merge(&mut self, other: &QueryOutcome) {
        self.first = match (self.first, other.first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.matches += other.matches;
        self.sum_k += other.sum_k;
        if let Some(o) = &other.hist {
            match &mut self.hist {
                Some(h) => {
                    for (a, b) in h.iter_mut().zip(o) {
                        *a += b;
                    }
                }
                None => self.hist = Some(o.clone()),
            }
        }
    }
}

impl Shard {
    /// Priority match within this shard.
    pub(crate) fn first_match(&self, q: &PackedQuery) -> Option<u32> {
        if let Some(idx) = &self.index {
            if let Some(hit) = idx.first_match(q) {
                return hit;
            }
        }
        self.table.first_match(q)
    }

    fn match_count(&self, q: &PackedQuery) -> u64 {
        if let Some(idx) = &self.index {
            if let Some(count) = idx.match_count(q) {
                return count;
            }
        }
        self.table.match_count(q)
    }

    pub(crate) fn lpm(&self, q: &PackedQuery) -> Option<(u32, u16)> {
        if let Some(idx) = &self.index {
            if let Some(hit) = idx.lpm(q) {
                return hit;
            }
        }
        self.table.lpm(q)
    }

    /// Evaluates one query, metering at the requested precision.
    pub(crate) fn outcome(&self, q: &PackedQuery, exact: bool) -> QueryOutcome {
        if exact {
            let mut hist = vec![0u64; self.table.width() + 1];
            self.table.histogram_into(q, &mut hist);
            let matches = hist.first().copied().unwrap_or(0);
            let sum_k = hist.iter().enumerate().map(|(k, &c)| k as u64 * c).sum();
            QueryOutcome {
                first: self.first_match(q),
                matches,
                sum_k,
                hist: Some(hist),
            }
        } else {
            QueryOutcome {
                first: self.first_match(q),
                matches: self.match_count(q),
                sum_k: self.table.sum_mismatches(q),
                hist: None,
            }
        }
    }
}

/// Per-design replay statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStats {
    /// The design.
    pub kind: DesignKind,
    /// Total metered energy over the metered queries (J).
    pub energy: f64,
    /// Modelled per-search latency of the array (s).
    pub latency: f64,
}

/// Statistics of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Queries replayed.
    pub queries: u64,
    /// Queries with at least one matching row.
    pub hits: u64,
    /// Total matching rows over all queries.
    pub total_matches: u64,
    /// Histogram of per-query match counts; the last bucket collects
    /// queries with `>= 8` matches.
    pub match_hist: [u64; MATCH_HIST_BUCKETS],
    /// Queries the energy model actually metered (equals `queries` except
    /// under [`Metering::Sampled`]).
    pub metered_queries: u64,
    /// Total search-line pair transitions over the stream.
    pub sl_toggles: u64,
    /// Per-design energy/latency, one entry per registered design.
    pub per_design: Vec<DesignStats>,
    /// Wall-clock nanoseconds of the replay (scheduling-dependent; every
    /// other field is thread-count-invariant).
    pub wall_nanos: u64,
}

impl EngineStats {
    pub(crate) fn new(designs: &[CostModel]) -> Self {
        Self {
            queries: 0,
            hits: 0,
            total_matches: 0,
            match_hist: [0; MATCH_HIST_BUCKETS],
            metered_queries: 0,
            sl_toggles: 0,
            per_design: designs
                .iter()
                .map(|d| DesignStats {
                    kind: d.kind(),
                    energy: 0.0,
                    latency: d.search_latency(),
                })
                .collect(),
            wall_nanos: 0,
        }
    }

    /// Replay throughput from the recorded wall clock.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.queries as f64 / (self.wall_nanos as f64 * 1e-9)
    }

    /// Mean metered energy per query (J) for one design, if registered.
    /// Under sampled metering this is the mean over the metered sample —
    /// the estimator for the full stream.
    pub fn energy_per_query(&self, kind: DesignKind) -> Option<f64> {
        let d = self.per_design.iter().find(|d| d.kind == kind)?;
        if self.metered_queries == 0 {
            return None;
        }
        Some(d.energy / self.metered_queries as f64)
    }

    /// Mean metered energy per query in picojoules.
    pub fn pj_per_query(&self, kind: DesignKind) -> Option<f64> {
        self.energy_per_query(kind).map(|e| e * 1e12)
    }

    /// Folds one merged query outcome into the stats. Must be called in
    /// query order with shard-order-merged outcomes so the floating-point
    /// energy accumulation is identical for every execution schedule.
    ///
    /// `metered == false` (skipped queries of a [`Metering::Sampled`]
    /// stream) updates the match statistics only.
    pub(crate) fn record(
        &mut self,
        outcome: &QueryOutcome,
        definite: u32,
        toggles: u32,
        metered: bool,
        designs: &[CostModel],
    ) {
        self.queries += 1;
        self.sl_toggles += u64::from(toggles);
        if outcome.first.is_some() {
            self.hits += 1;
        }
        self.total_matches += outcome.matches;
        let bucket = (outcome.matches as usize).min(MATCH_HIST_BUCKETS - 1);
        self.match_hist[bucket] += 1;
        if !metered {
            return;
        }
        self.metered_queries += 1;
        match &outcome.hist {
            Some(hist) => {
                for (model, d) in designs.iter().zip(&mut self.per_design) {
                    d.energy += model.energy_from_hist(hist, definite, toggles);
                }
            }
            None => {
                for (model, d) in designs.iter().zip(&mut self.per_design) {
                    d.energy += model.energy_from_aggregate(
                        outcome.matches,
                        outcome.sum_k,
                        definite,
                        toggles,
                    );
                }
            }
        }
    }
}

/// A calibrated, sharded, bit-parallel TCAM search engine.
///
/// Build one from a [`TcamTable`], register designs via
/// [`TcamEngine::with_design`], then answer ad-hoc queries or replay a
/// stream through a [`ReplaySession`] (serial) or
/// [`crate::pipeline::replay`] (sharded, executor fan-out).
#[derive(Debug, Clone)]
pub struct TcamEngine {
    width: usize,
    rows: usize,
    config: EngineConfig,
    shards: Vec<Shard>,
    designs: Vec<CostModel>,
}

impl TcamEngine {
    /// Packs `table` into `config.shards` contiguous bit-plane shards.
    pub fn new(table: &TcamTable, config: EngineConfig) -> Self {
        let rows = table.len();
        let n = config.shards.max(1);
        let shards = (0..n)
            .map(|s| {
                let lo = s * rows / n;
                let hi = (s + 1) * rows / n;
                let bp = BitPlaneTable::from_rows(table, lo..hi);
                let index = if bp.len() >= config.index_min_rows {
                    PrefixIndex::build(table, bp.row_ids())
                } else {
                    None
                };
                Shard { table: bp, index }
            })
            .collect();
        Self {
            width: table.width(),
            rows,
            config,
            shards,
            designs: Vec::new(),
        }
    }

    /// Registers a design's cost model, calibrated for this table's shape.
    ///
    /// # Panics
    ///
    /// Panics if the calibration width differs from the table width.
    #[must_use]
    pub fn with_design(mut self, calibration: &RowCalibration) -> Self {
        assert_eq!(
            calibration.width, self.width,
            "calibration width {} != table width {}",
            calibration.width, self.width
        );
        self.designs.push(CostModel::from_calibration(
            calibration.kind,
            calibration,
            self.rows,
        ));
        self
    }

    /// Word width in digits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registered cost models, in registration order.
    pub fn designs(&self) -> &[CostModel] {
        &self.designs
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// `true` if any shard carries a prefix index.
    pub fn is_indexed(&self) -> bool {
        self.shards.iter().any(|s| s.index.is_some())
    }

    /// Unmetered priority search (lowest matching row index).
    pub fn search(&self, query: &TernaryWord) -> Option<u32> {
        let q = PackedQuery::from_word(query);
        self.shards.iter().filter_map(|s| s.first_match(&q)).min()
    }

    /// Unmetered longest-prefix match (fewest wildcards, ties to lowest
    /// row index).
    pub fn lpm(&self, query: &TernaryWord) -> Option<u32> {
        let q = PackedQuery::from_word(query);
        self.shards
            .iter()
            .filter_map(|s| s.lpm(&q))
            .min_by_key(|&(gid, wc)| (wc, gid))
            .map(|(gid, _)| gid)
    }

    /// Number of rows matching `query`.
    pub fn match_count(&self, query: &TernaryWord) -> u64 {
        let q = PackedQuery::from_word(query);
        self.shards.iter().map(|s| s.match_count(&q)).sum()
    }

    /// Row with the fewest mismatches against `query` (nearest-Hamming).
    pub fn nearest(&self, query: &TernaryWord) -> Option<(u32, u32)> {
        let q = PackedQuery::from_word(query);
        self.shards
            .iter()
            .filter_map(|s| s.table.nearest(&q))
            .min_by_key(|&(gid, k)| (k, gid))
    }

    /// Whether query number `index` of a stream is metered with a full
    /// histogram.
    pub(crate) fn meter_exactly(&self, index: u64) -> bool {
        match self.config.metering {
            Metering::Exact => true,
            Metering::Aggregate => false,
            Metering::Sampled { period } => index.is_multiple_of(period.max(1)),
        }
    }

    /// Whether query number `index` contributes to the energy estimate.
    pub(crate) fn is_metered(&self, index: u64) -> bool {
        match self.config.metering {
            Metering::Exact | Metering::Aggregate => true,
            Metering::Sampled { period } => index.is_multiple_of(period.max(1)),
        }
    }

    /// Evaluates one packed query across all shards, merged in shard order.
    pub(crate) fn evaluate(&self, q: &PackedQuery, index: u64) -> QueryOutcome {
        let exact = self.meter_exactly(index);
        let mut merged = QueryOutcome::default();
        for s in &self.shards {
            merged.merge(&s.outcome(q, exact));
        }
        merged
    }

    /// Starts a serial metered replay session.
    pub fn session(&self) -> ReplaySession<'_> {
        ReplaySession {
            engine: self,
            prev: None,
            index: 0,
            stats: EngineStats::new(&self.designs),
            started: std::time::Instant::now(),
        }
    }
}

/// A serial metered replay: feed queries in stream order, read the
/// accumulated [`EngineStats`] at the end. The parallel pipeline
/// ([`crate::pipeline::replay`]) produces bit-identical stats (except
/// `wall_nanos`) for any shard/thread configuration.
#[derive(Debug)]
pub struct ReplaySession<'a> {
    engine: &'a TcamEngine,
    prev: Option<PackedQuery>,
    index: u64,
    stats: EngineStats,
    started: std::time::Instant,
}

impl ReplaySession<'_> {
    /// Replays one query; returns the priority-match row id.
    pub fn query(&mut self, word: &TernaryWord) -> Option<u32> {
        let q = PackedQuery::from_word(word);
        let toggles = q.toggles_from(self.prev.as_ref());
        let outcome = self.engine.evaluate(&q, self.index);
        self.stats.record(
            &outcome,
            q.definite_count(),
            toggles,
            self.engine.is_metered(self.index),
            &self.engine.designs,
        );
        self.prev = Some(q);
        self.index += 1;
        outcome.first
    }

    /// Replays every query of an iterator.
    pub fn replay<'w>(&mut self, words: impl IntoIterator<Item = &'w TernaryWord>) {
        for w in words {
            self.query(w);
        }
    }

    /// Finishes the session, stamping the wall clock.
    pub fn finish(mut self) -> EngineStats {
        self.stats.wall_nanos = self.started.elapsed().as_nanos() as u64;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[&str]) -> TcamTable {
        let mut t = TcamTable::new(rows[0].len());
        for r in rows {
            t.push(r.parse().unwrap());
        }
        t
    }

    #[test]
    fn engine_agrees_with_golden_model_across_shard_counts() {
        let t = table(&["1010", "10XX", "XXXX", "0101", "111X", "0000"]);
        for shards in [1, 2, 3, 4] {
            let engine = TcamEngine::new(
                &t,
                EngineConfig {
                    shards,
                    ..EngineConfig::default()
                },
            );
            for q in ["1010", "1011", "0101", "0000", "1111", "XXXX"] {
                let word: TernaryWord = q.parse().unwrap();
                assert_eq!(
                    engine.search(&word),
                    t.search(&word).map(|i| i as u32),
                    "search {q} with {shards} shards"
                );
                assert_eq!(
                    engine.lpm(&word),
                    t.longest_prefix_match(&word).map(|i| i as u32),
                    "lpm {q} with {shards} shards"
                );
                assert_eq!(
                    engine.match_count(&word),
                    t.search_all(&word).len() as u64,
                    "count {q} with {shards} shards"
                );
            }
        }
    }

    #[test]
    fn empty_table_answers_nothing() {
        let engine = TcamEngine::new(&TcamTable::new(8), EngineConfig::default());
        let q: TernaryWord = "00000000".parse().unwrap();
        assert_eq!(engine.search(&q), None);
        assert_eq!(engine.lpm(&q), None);
        assert_eq!(engine.match_count(&q), 0);
        assert_eq!(engine.nearest(&q), None);
    }

    #[test]
    fn session_counts_hits_and_matches() {
        let t = table(&["1010", "10XX", "XXXX"]);
        let engine = TcamEngine::new(&t, EngineConfig::default());
        let mut session = engine.session();
        assert_eq!(session.query(&"1010".parse().unwrap()), Some(0));
        assert_eq!(session.query(&"0111".parse().unwrap()), Some(2));
        let stats = session.finish();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.total_matches, 4);
        assert_eq!(stats.match_hist[3], 1);
        assert_eq!(stats.match_hist[1], 1);
        // No designs registered: still metered (histograms computed).
        assert_eq!(stats.metered_queries, 2);
    }
}
