//! Property-based equivalence: the engine's bit-plane kernels (sharded,
//! with and without the prefix index) must agree with the golden
//! `TcamTable` model on every operation, for arbitrary ternary content —
//! including all-X rows, all-X queries and empty tables.

use ftcam_engine::{EngineConfig, TcamEngine};
use ftcam_workloads::{TcamTable, Ternary, TernaryWord};
use proptest::prelude::*;

const WIDTH: usize = 10;

fn ternary() -> impl Strategy<Value = Ternary> {
    prop_oneof![Just(Ternary::Zero), Just(Ternary::One), Just(Ternary::X)]
}

fn word() -> impl Strategy<Value = TernaryWord> {
    proptest::collection::vec(ternary(), WIDTH).prop_map(TernaryWord::new)
}

/// Prefix-heavy words (the index's favourable shape) mixed with fully
/// random ternary words and the all-X row.
fn row() -> impl Strategy<Value = TernaryWord> {
    prop_oneof![
        word(),
        (any::<u16>(), 0usize..=WIDTH).prop_map(|(v, len)| TernaryWord::prefix(
            u64::from(v),
            len,
            WIDTH
        )),
        Just(TernaryWord::all_x(WIDTH)),
    ]
}

fn table(rows: Vec<TernaryWord>) -> TcamTable {
    let mut t = TcamTable::new(WIDTH);
    t.extend(rows);
    t
}

/// Engines covering the interesting configurations: single shard, several
/// shards, and a forced prefix index.
fn engines(t: &TcamTable) -> Vec<TcamEngine> {
    vec![
        TcamEngine::new(t, EngineConfig::default()),
        TcamEngine::new(
            t,
            EngineConfig {
                shards: 3,
                ..EngineConfig::default()
            },
        ),
        TcamEngine::new(
            t,
            EngineConfig {
                shards: 2,
                index_min_rows: 1,
                ..EngineConfig::default()
            },
        ),
    ]
}

/// Golden nearest-Hamming: min mismatch count, ties to lowest index.
fn golden_nearest(t: &TcamTable, q: &TernaryWord) -> Option<(u32, u32)> {
    t.mismatch_profile(q)
        .iter()
        .enumerate()
        .map(|(i, &k)| (k as u32, i as u32))
        .min()
        .map(|(k, i)| (i, k))
}

proptest! {
    /// Priority match, LPM, match count and nearest-Hamming all agree with
    /// the golden model for every engine configuration.
    #[test]
    fn engine_equals_golden_model(
        rows in proptest::collection::vec(row(), 0..40),
        queries in proptest::collection::vec(word(), 1..8),
    ) {
        let t = table(rows);
        for engine in engines(&t) {
            for q in &queries {
                prop_assert_eq!(
                    engine.search(q),
                    t.search(q).map(|i| i as u32),
                    "search, {} shards, indexed: {}",
                    engine.config().shards,
                    engine.is_indexed()
                );
                prop_assert_eq!(
                    engine.lpm(q),
                    t.longest_prefix_match(q).map(|i| i as u32),
                    "lpm, {} shards, indexed: {}",
                    engine.config().shards,
                    engine.is_indexed()
                );
                prop_assert_eq!(
                    engine.match_count(q),
                    t.search_all(q).len() as u64,
                    "match_count, {} shards, indexed: {}",
                    engine.config().shards,
                    engine.is_indexed()
                );
                prop_assert_eq!(
                    engine.nearest(q),
                    golden_nearest(&t, q),
                    "nearest, {} shards, indexed: {}",
                    engine.config().shards,
                    engine.is_indexed()
                );
            }
        }
    }

    /// All-X rows match every query; an all-X query matches every row.
    #[test]
    fn wildcard_extremes(rows in proptest::collection::vec(row(), 1..20)) {
        let mut all = rows.clone();
        all.insert(0, TernaryWord::all_x(WIDTH));
        let t = table(all);
        for engine in engines(&t) {
            // The all-X row at index 0 wins priority for any query.
            prop_assert_eq!(engine.search(&TernaryWord::from_bits(0, WIDTH)), Some(0));
            // The all-X query matches every row.
            prop_assert_eq!(engine.match_count(&TernaryWord::all_x(WIDTH)), t.len() as u64);
        }
    }

    /// Empty tables answer nothing, in every configuration.
    #[test]
    fn empty_table(q in word()) {
        let t = TcamTable::new(WIDTH);
        for engine in engines(&t) {
            prop_assert_eq!(engine.search(&q), None);
            prop_assert_eq!(engine.lpm(&q), None);
            prop_assert_eq!(engine.match_count(&q), 0);
            prop_assert_eq!(engine.nearest(&q), None);
        }
    }
}
