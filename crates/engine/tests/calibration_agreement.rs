//! Round-trip agreement between the engine's calibration-exported cost
//! model and the circuit-level experiments it mirrors:
//!
//! * **fig. 6** — engine row energy for `k` spread mismatches at 64 bits
//!   vs the transistor-level measurement, within 5 % for `fefet2t`,
//!   `ea-ls` and `ea-mls`;
//! * **fig. 9** — engine exact-metered replay average vs
//!   `ArrayModel::average_search_energy` on the same workload, to
//!   floating-point accumulation tolerance;
//! * aggregate metering vs exact metering, within 10 %.

use ftcam_array::{ArrayModel, ArrayParams};
use ftcam_cells::DesignKind;
use ftcam_core::{experiments::e06_energy_hamming, Artifact, Evaluator};
use ftcam_engine::{CostModel, EngineConfig, Metering, WorkloadReplay};
use ftcam_workloads::{IpRoutingWorkloadParams, Ternary, TernaryWord};

/// The fig. 6 stored word: a definite alternating pattern — identical to
/// both the e06 driver's and the calibration's reference word.
fn alternating(width: usize) -> TernaryWord {
    (0..width)
        .map(|i| {
            if i % 2 == 0 {
                Ternary::One
            } else {
                Ternary::Zero
            }
        })
        .collect()
}

#[test]
fn engine_row_energy_matches_fig6_within_5_percent() {
    const WIDTH: usize = 64;
    const TOLERANCE: f64 = 0.05;
    let designs = [
        DesignKind::FeFet2T,
        DesignKind::EaLowSwing,
        DesignKind::EaMlSegmented,
    ];
    let ks = vec![0usize, 1, 2, 4, 8, 16, 32, 64];
    let eval = Evaluator::quick();
    let params = e06_energy_hamming::Params {
        width: WIDTH,
        mismatch_counts: ks.clone(),
        designs: designs.to_vec(),
    };
    let Artifact::Figure(fig) = e06_energy_hamming::run(&eval, &params).expect("fig6 runs") else {
        panic!("expected figure")
    };
    let stored = alternating(WIDTH);
    for (series, &kind) in fig.series.iter().zip(&designs) {
        assert_eq!(series.name, kind.key());
        let calib = eval
            .calibrations()
            .get(kind, WIDTH)
            .expect("calibration available");
        let cost = CostModel::from_calibration(kind, &calib, 64);
        for (&k, &measured_fj) in ks.iter().zip(&series.y) {
            let query = stored.with_spread_mismatches(k);
            let engine_fj = cost.positional_row_energy(&stored, &query) * 1e15;
            let rel = (engine_fj - measured_fj).abs() / measured_fj.abs().max(1e-12);
            assert!(
                rel <= TOLERANCE,
                "{} at k={k}: engine {engine_fj:.4} fJ vs measured {measured_fj:.4} fJ \
                 ({:.2}% off)",
                kind.key(),
                rel * 100.0
            );
        }
    }
}

#[test]
fn engine_replay_average_matches_fig9_energy() {
    let eval = Evaluator::quick();
    let params = IpRoutingWorkloadParams {
        entries: 48,
        queries: 96,
        width: 16,
        ..IpRoutingWorkloadParams::default()
    };
    let replay = WorkloadReplay::ip_routing(&params);
    // The fig. 9 golden number: whole-workload histogram + toggle stats
    // through the array model.
    let workload = ftcam_workloads::IpRoutingWorkload::new(params.clone()).generate();
    let hist = workload.mismatch_histogram();
    let toggles = workload.toggle_stats();
    // Exercise every cost-model term: flat non-gated, flat gated,
    // segmented, and everything combined.
    for kind in [
        DesignKind::FeFet2T,
        DesignKind::EaSlGated,
        DesignKind::EaMlSegmented,
        DesignKind::EaFull,
    ] {
        let calib = eval.calibrations().get(kind, 16).expect("calibration");
        let golden = ArrayModel::new(
            ArrayParams::new(kind, replay.table.len(), 16),
            calib.clone(),
        )
        .average_search_energy(&hist, Some(&toggles));
        let engine = replay.engine(EngineConfig::default()).with_design(&calib);
        let mut session = engine.session();
        session.replay(&replay.queries(0..96));
        let stats = session.finish();
        let per_query = stats.energy_per_query(kind).expect("design registered");
        let rel = (per_query - golden).abs() / golden;
        assert!(
            rel < 1e-9,
            "{}: engine {per_query:.6e} J vs fig9 {golden:.6e} J (rel {rel:.2e})",
            kind.key()
        );
    }
}

#[test]
fn aggregate_metering_tracks_exact_within_10_percent() {
    let eval = Evaluator::quick();
    let params = IpRoutingWorkloadParams {
        entries: 96,
        queries: 128,
        width: 16,
        ..IpRoutingWorkloadParams::default()
    };
    let replay = WorkloadReplay::ip_routing(&params);
    let queries = replay.queries(0..128);
    for kind in [
        DesignKind::FeFet2T,
        DesignKind::EaMlSegmented,
        DesignKind::EaFull,
    ] {
        let calib = eval.calibrations().get(kind, 16).expect("calibration");
        let run = |metering: Metering| {
            let engine = replay
                .engine(EngineConfig {
                    metering,
                    ..EngineConfig::default()
                })
                .with_design(&calib);
            let mut session = engine.session();
            session.replay(&queries);
            session.finish().energy_per_query(kind).expect("metered")
        };
        let exact = run(Metering::Exact);
        let aggregate = run(Metering::Aggregate);
        let rel = (aggregate - exact).abs() / exact;
        assert!(
            rel < 0.10,
            "{}: aggregate {aggregate:.4e} J vs exact {exact:.4e} J ({:.1}% off)",
            kind.key(),
            rel * 100.0
        );
    }
}

#[test]
fn sampled_metering_estimates_exact_energy() {
    let eval = Evaluator::quick();
    let replay = WorkloadReplay::ip_routing(&IpRoutingWorkloadParams {
        entries: 64,
        queries: 256,
        width: 16,
        ..IpRoutingWorkloadParams::default()
    });
    let queries = replay.queries(0..256);
    let kind = DesignKind::EaFull;
    let calib = eval.calibrations().get(kind, 16).expect("calibration");
    let run = |metering: Metering| {
        let engine = replay
            .engine(EngineConfig {
                metering,
                ..EngineConfig::default()
            })
            .with_design(&calib);
        let mut session = engine.session();
        session.replay(&queries);
        session.finish()
    };
    let exact = run(Metering::Exact);
    let sampled = run(Metering::Sampled { period: 5 });
    assert_eq!(sampled.metered_queries, 52, "ceil(256 / 5) queries metered");
    let e = exact.energy_per_query(kind).expect("metered");
    let s = sampled.energy_per_query(kind).expect("metered");
    let rel = (s - e).abs() / e;
    assert!(
        rel < 0.15,
        "sampled estimate {s:.4e} J vs exact {e:.4e} J ({:.1}% off)",
        rel * 100.0
    );
}
