//! # ftcam — energy-aware ferroelectric TCAM designs
//!
//! A from-scratch Rust reproduction of *"Energy-Aware Designs of
//! Ferroelectric Ternary Content Addressable Memory"* (DATE 2021),
//! including the entire analog substrate the evaluation needs: an MNA
//! transient circuit simulator, FeFET/MOSFET/ReRAM compact models,
//! transistor-level TCAM cell designs, array-level projection models,
//! workload generators, and the experiment harness that regenerates every
//! table and figure.
//!
//! This facade crate re-exports the workspace layers under stable paths:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`units`]     | `ftcam-units`     | physical-quantity newtypes |
//! | [`circuit`]   | `ftcam-circuit`   | the MNA simulator |
//! | [`devices`]   | `ftcam-devices`   | MOSFET / FeFET / ReRAM models |
//! | [`cells`]     | `ftcam-cells`     | TCAM cell designs + row testbench |
//! | [`array`](mod@array) | `ftcam-array` | array models + Monte Carlo |
//! | [`workloads`] | `ftcam-workloads` | ternary data + workload generators |
//! | [`core`]      | `ftcam-core`      | evaluator + experiment drivers |
//! | [`engine`](mod@engine) | `ftcam-engine` | calibrated bit-parallel search engine |
//!
//! # Quickstart
//!
//! ```
//! use ftcam::cells::{DesignKind, RowTestbench, SearchTiming};
//! use ftcam::devices::TechCard;
//!
//! # fn main() -> Result<(), ftcam::cells::CellError> {
//! // Build an 8-bit 2-FeFET TCAM word, store a ternary pattern, search it.
//! let mut row = RowTestbench::new(
//!     DesignKind::FeFet2T.instantiate(),
//!     TechCard::hp45(),
//!     Default::default(),
//!     8,
//! )?;
//! row.program_word(&"10X1011X".parse().unwrap())?;
//! let outcome = row.search(&"1011011X".parse().unwrap(), &SearchTiming::fast())?;
//! assert!(outcome.matched);
//! println!("search energy: {:.2} fJ", outcome.energy_total * 1e15);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftcam_array as array;
pub use ftcam_cells as cells;
pub use ftcam_circuit as circuit;
pub use ftcam_core as core;
pub use ftcam_devices as devices;
pub use ftcam_engine as engine;
pub use ftcam_units as units;
pub use ftcam_workloads as workloads;
