//! Longest-prefix-match routing: the paper's motivating application.
//!
//! Generates a synthetic BGP-shaped routing table, performs lookups with
//! the functional golden model, and projects the array-level search energy
//! of each TCAM design under the measured workload statistics.
//!
//! ```text
//! cargo run --release --example ip_router
//! ```

use ftcam::array::{ArrayModel, ArrayParams, CalibrationCache};
use ftcam::cells::{DesignKind, SearchTiming};
use ftcam::devices::TechCard;
use ftcam::workloads::{IpRoutingWorkload, IpRoutingWorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-entry, 16-bit-prefix router (scaled down so the transistor-level
    // calibration stays fast; bump `width`/`entries` for the full thing).
    let params = IpRoutingWorkloadParams {
        entries: 64,
        queries: 512,
        hit_fraction: 0.8,
        width: 16,
        seed: 2026,
    };
    let workload = IpRoutingWorkload::new(params).generate();
    println!("workload: {}", workload.name);

    // Functional behaviour: longest-prefix match via priority order.
    let mut hits = 0usize;
    for q in &workload.queries {
        if let Some(row) = workload.table.search(q) {
            hits += 1;
            // Priority order = longest prefix first, so `search` == LPM.
            assert_eq!(workload.table.longest_prefix_match(q), Some(row));
        }
    }
    println!(
        "lookups: {} / {} hit some prefix",
        hits,
        workload.queries.len()
    );

    // Workload statistics that drive the energy model.
    let hist = workload.mismatch_histogram();
    let toggles = workload.toggle_stats();
    println!(
        "mismatch stats: mean {:.2} mismatching cells/row, {:.2}% of (query,row) pairs match",
        hist.mean(),
        100.0 * hist.match_fraction()
    );
    println!(
        "SL activity: {:.2} toggles/search vs {:.2} driven digits/search (gating ratio {:.2})\n",
        toggles.transitions_per_search(),
        toggles.definite_digits_per_search(),
        toggles.gating_activity_ratio()
    );

    // Array-level projection per design.
    let cache = CalibrationCache::new(
        TechCard::hp45(),
        Default::default(),
        SearchTiming::default(),
    );
    let rows = workload.table.len();
    let width = workload.table.width();
    println!("array: {rows} x {width}");
    println!(
        "{:<10} {:>16} {:>14}",
        "design", "energy/query", "vs 2-FeFET"
    );
    let baseline = {
        let calib = cache.get(DesignKind::FeFet2T, width)?;
        let model = ArrayModel::new(ArrayParams::new(DesignKind::FeFet2T, rows, width), calib);
        model.average_search_energy(&hist, Some(&toggles))
    };
    for kind in DesignKind::ALL {
        let calib = cache.get(kind, width)?;
        let model = ArrayModel::new(ArrayParams::new(kind, rows, width), calib);
        let e = model.average_search_energy(&hist, Some(&toggles));
        println!(
            "{:<10} {:>12.2} pJ {:>13.2}x",
            kind.key(),
            e * 1e12,
            e / baseline
        );
    }
    Ok(())
}
