//! Design-space exploration: sweep the low-swing fraction α and the
//! segment count, and report the energy/delay/margin frontier — the
//! "energy-aware design" knobs the paper turns.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ftcam::cells::{EaLowSwing, EaMlSegmented, RowTestbench, SearchTiming};
use ftcam::devices::TechCard;
use ftcam::workloads::{Ternary, TernaryWord};

fn stored(width: usize) -> TernaryWord {
    (0..width)
        .map(|i| {
            if i % 2 == 0 {
                Ternary::One
            } else {
                Ternary::Zero
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 16;
    let word = stored(width);
    let miss = word.with_spread_mismatches(width / 2);
    let timing = SearchTiming::default();
    let card = TechCard::hp45();

    println!("== low-swing fraction α (EA-LS, {width}-bit) ==");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "α", "E (fJ)", "delay (ns)", "margin (V)", "EDP (fJ·ns)"
    );
    let mut best = (f64::INFINITY, 0.0);
    for alpha in [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let mut row = RowTestbench::new(
            Box::new(EaLowSwing::new(alpha)),
            card.clone(),
            Default::default(),
            width,
        )?;
        row.program_word(&word)?;
        let hit = row.search(&word, &timing)?;
        let mis = row.search(&miss, &timing)?;
        let energy = 0.5 * (hit.energy_total + mis.energy_total);
        let delay = hit.latency.max(mis.latency);
        let margin = hit.sense_margin.min(mis.sense_margin);
        let edp = energy * delay * 1e24;
        if margin > 0.05 && edp < best.0 {
            best = (edp, alpha);
        }
        println!(
            "{alpha:>5.1} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            energy * 1e15,
            delay * 1e9,
            margin,
            edp
        );
    }
    println!(
        "→ minimum-EDP point with ≥50 mV margin: α = {:.1}\n",
        best.1
    );

    println!("== segment count (EA-MLS, {width}-bit, half-width mismatch) ==");
    println!(
        "{:>9} {:>12} {:>14} {:>12}",
        "segments", "E (fJ)", "stages run", "delay (ns)"
    );
    for segments in [1usize, 2, 4, 8] {
        let mut row = RowTestbench::new(
            Box::new(EaMlSegmented::new(segments)),
            card.clone(),
            Default::default(),
            width,
        )?;
        row.program_word(&word)?;
        let out = row.search(&miss, &timing)?;
        println!(
            "{segments:>9} {:>12.3} {:>14} {:>12.3}",
            out.energy_total * 1e15,
            out.stages.len(),
            out.latency * 1e9
        );
    }
    println!("\nMore segments terminate earlier on mismatches but serialise matches.");
    Ok(())
}
