//! Quickstart: build one TCAM word at transistor level, program a ternary
//! pattern, and run match / mismatch searches with full energy breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ftcam::cells::{DesignKind, RowTestbench, SearchTiming};
use ftcam::devices::TechCard;
use ftcam::units::{Joules, Seconds};
use ftcam::workloads::TernaryWord;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 16;
    let stored: TernaryWord = "10X1011010X10110".parse()?;
    let hit: TernaryWord = "1011011010110110".parse()?;
    let miss = hit.with_spread_mismatches(3);

    println!("stored word : {stored}");
    println!("hit query   : {hit}");
    println!("miss query  : {miss}\n");

    let timing = SearchTiming::default();
    for kind in [DesignKind::Cmos16T, DesignKind::FeFet2T, DesignKind::EaFull] {
        let mut row = RowTestbench::new(
            kind.instantiate(),
            TechCard::hp45(),
            Default::default(),
            width,
        )?;
        row.program_word(&stored)?;

        let h = row.search(&hit, &timing)?;
        let m = row.search(&miss, &timing)?;
        assert_eq!(h.matched, row.golden_matches(&hit));
        assert_eq!(m.matched, row.golden_matches(&miss));

        println!("== {} ({}) ==", row.design().name(), kind.key());
        println!(
            "  match    : decided {:>5}, latency {}, energy {}",
            h.matched,
            Seconds::new(h.latency),
            Joules::new(h.energy_total),
        );
        println!(
            "  mismatch : decided {:>5}, latency {}, energy {}",
            m.matched,
            Seconds::new(m.latency),
            Joules::new(m.energy_total),
        );
        println!(
            "  breakdown (mismatch): ML {}, SL {}, ctrl {}\n",
            Joules::new(m.energy_ml),
            Joules::new(m.energy_sl),
            Joules::new(m.energy_ctrl),
        );
    }
    Ok(())
}
