//! Workload-scale routing through the calibrated search engine: a
//! 100k-prefix IPv4 table, a replayed query stream, and per-design energy
//! metered by the calibration-exported cost model — the behavioural
//! counterpart of `examples/ip_router.rs`, three orders of magnitude
//! larger than the transistor-level golden-model pass can handle.
//!
//! ```text
//! cargo run --release --example engine_router
//! ```

use ftcam::cells::DesignKind;
use ftcam::core::Evaluator;
use ftcam::engine::{pipeline, EngineConfig, Metering, WorkloadReplay};
use ftcam::workloads::IpRoutingWorkloadParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const ENTRIES: usize = 100_000;
    const QUERIES: u64 = 8192;
    let designs = [
        DesignKind::FeFet2T,
        DesignKind::EaSlGated,
        DesignKind::EaMlSegmented,
        DesignKind::EaFull,
    ];

    // A BGP-shaped 100k-entry IPv4 routing table plus its query stream.
    let replay = WorkloadReplay::ip_routing(&IpRoutingWorkloadParams {
        entries: ENTRIES,
        queries: QUERIES as usize,
        width: 32,
        ..IpRoutingWorkloadParams::default()
    });
    println!(
        "table: {} ({} rows, width {})",
        replay.name,
        replay.table.len(),
        replay.table.width()
    );

    // One transistor-level calibration per design (cached by the
    // evaluator); each exports a cost model into the engine.
    let eval = Evaluator::quick();
    let mut engine = replay.engine(EngineConfig {
        shards: 4,
        metering: Metering::Sampled { period: 7 },
        ..EngineConfig::default()
    });
    for kind in designs {
        engine = engine.with_design(&eval.calibrations().get(kind, 32)?);
    }
    println!(
        "engine: {} shard(s), prefix-indexed: {}, metering every 7th query\n",
        engine.config().shards,
        engine.is_indexed()
    );

    // Replay the stream through the batched pipeline.
    let queries = replay.queries(0..QUERIES);
    let stats = pipeline::replay(&engine, &queries, &eval.executor(), 256);

    println!(
        "replayed {} queries: {:.0} queries/sec, {:.1}% hit a prefix, {} metered",
        stats.queries,
        stats.queries_per_sec(),
        100.0 * stats.hits as f64 / stats.queries.max(1) as f64,
        stats.metered_queries,
    );
    println!("\n{:<16} {:>12}", "design", "pJ/query");
    for kind in designs {
        let pj = stats.pj_per_query(kind).ok_or("design not metered")?;
        println!("{:<16} {:>12.3}", kind.key(), pj);
    }
    Ok(())
}
