//! Dumps match-line transient waveforms as CSV for plotting (the data
//! behind the paper's Fig. 3).
//!
//! ```text
//! cargo run --release --example waveforms > ml_waveforms.csv
//! ```

use ftcam::cells::{DesignKind, RowTestbench, SearchTiming};
use ftcam::devices::TechCard;
use ftcam::workloads::{Ternary, TernaryWord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 16;
    let stored: TernaryWord = (0..width)
        .map(|i| {
            if i % 2 == 0 {
                Ternary::One
            } else {
                Ternary::Zero
            }
        })
        .collect();
    let timing = SearchTiming::default();

    // Collect (label, trace) pairs for two designs and three scenarios.
    let mut columns: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for kind in [DesignKind::FeFet2T, DesignKind::EaLowSwing] {
        let mut row = RowTestbench::new(
            kind.instantiate(),
            TechCard::hp45(),
            Default::default(),
            width,
        )?;
        row.program_word(&stored)?;
        for (name, k) in [("match", 0usize), ("miss1", 1), ("miss8", 8)] {
            let query = stored.with_spread_mismatches(k);
            let (_, traces) = row.search_traced(&query, &timing)?;
            let t = traces.last().expect("one stage");
            columns.push((
                format!("{}_{name}", kind.key()),
                t.times.clone(),
                t.volts.clone(),
            ));
        }
    }

    // Emit a merged CSV on a uniform grid.
    let t_total = 2.0 * timing.cycle();
    let n = 400usize;
    print!("time_s");
    for (label, _, _) in &columns {
        print!(",{label}");
    }
    println!();
    for i in 0..n {
        let t = t_total * i as f64 / (n - 1) as f64;
        print!("{t:e}");
        for (_, times, volts) in &columns {
            let idx = times.partition_point(|&x| x < t).min(times.len() - 1);
            let v = if idx == 0 {
                volts[0]
            } else {
                let (t0, t1) = (times[idx - 1], times[idx]);
                let (v0, v1) = (volts[idx - 1], volts[idx]);
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * ((t - t0) / (t1 - t0)).clamp(0.0, 1.0)
                }
            };
            print!(",{v:.5}");
        }
        println!();
    }
    Ok(())
}
