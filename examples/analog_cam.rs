//! Multi-level (analog) CAM: store *ranges* in the 2-FeFET cell via
//! intermediate polarization and search with analog levels — the FeCAM
//! extension of the binary TCAM designs.
//!
//! ```text
//! cargo run --release --example analog_cam
//! ```

use ftcam::cells::{LevelRange, McamRow, SearchTiming};
use ftcam::devices::TechCard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let timing = SearchTiming::relaxed();

    // A 4-cell word storing intervals: think "classify a 4-feature vector".
    let mut row = McamRow::new(TechCard::hp45(), Default::default(), 4)?;
    row.program(&[
        LevelRange::new(0.2, 0.6),
        LevelRange::any(),
        LevelRange::new(0.0, 0.3),
        LevelRange::new(0.7, 1.0),
    ])?;
    println!("stored ranges: {:?}\n", row.ranges());

    for (label, probe) in [
        ("inside every range ", [0.4, 0.9, 0.1, 0.8]),
        ("feature 0 too high  ", [0.8, 0.9, 0.1, 0.8]),
        ("feature 2 too high  ", [0.4, 0.9, 0.6, 0.8]),
        ("feature 3 too low   ", [0.4, 0.9, 0.1, 0.3]),
    ] {
        let out = row.search(&probe, &timing)?;
        assert_eq!(out.matched, row.golden_matches(&probe));
        println!(
            "{label} {probe:?} → {} (margin {:.0} mV, {:.2} fJ)",
            if out.matched { "MATCH   " } else { "mismatch" },
            out.sense_margin * 1e3,
            out.energy_total * 1e15
        );
    }

    // Quantised mode: 2 bits per cell = double density vs binary TCAM.
    println!("\n2-bit quantised mode (4 cells = 8 equivalent bits):");
    let mut row = McamRow::new(TechCard::hp45(), Default::default(), 4)?;
    let digits = [2usize, 0, 3, 1];
    row.program_quantized(&digits, 2)?;
    let exact = McamRow::quantized_levels(&digits, 2);
    let hit = row.search(&exact, &timing)?;
    println!("  exact digits {digits:?} → matched = {}", hit.matched);
    let off = McamRow::quantized_levels(&[2, 1, 3, 1], 2);
    let miss = row.search(&off, &timing)?;
    println!("  one digit off        → matched = {}", miss.matched);
    Ok(())
}
