//! Approximate (nearest-neighbour) search for hyperdimensional computing:
//! the second application class FeFET TCAM papers target.
//!
//! Stores random class hypervectors, classifies noisy queries with the
//! golden model, and measures — at transistor level — how the match-line
//! discharge rate encodes Hamming distance (the property HDC associative
//! memories exploit).
//!
//! ```text
//! cargo run --release --example hdc_similarity
//! ```

use ftcam::cells::{DesignKind, RowTestbench, SearchTiming};
use ftcam::devices::TechCard;
use ftcam::workloads::{HdcWorkload, HdcWorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = HdcWorkloadParams {
        classes: 16,
        width: 16,
        queries: 200,
        noise: 0.08,
        seed: 99,
    };
    let workload = HdcWorkload::new(params).generate();
    println!("workload: {}\n", workload.name);

    // Functional accuracy: nearest stored vector should usually be the
    // noisy query's source class.
    let mut nearest_is_unique_min = 0usize;
    for q in &workload.queries {
        let profile = workload.table.mismatch_profile(q);
        let min = profile.iter().min().copied().unwrap_or(0);
        if profile.iter().filter(|&&d| d == min).count() == 1 {
            nearest_is_unique_min += 1;
        }
    }
    println!(
        "{} / {} queries have a unique nearest class (mean noise {:.1} bits)",
        nearest_is_unique_min,
        workload.queries.len(),
        0.08 * 16.0
    );

    // Circuit level: ML discharge latency grows monotonically *shorter*
    // with Hamming distance — the analogue distance signal.
    let mut row = RowTestbench::new(
        DesignKind::FeFet2T.instantiate(),
        TechCard::hp45(),
        Default::default(),
        16,
    )?;
    let class = workload.table.rows()[0].clone();
    row.program_word(&class)?;
    let timing = SearchTiming::default();
    println!("\nHamming distance → ML discharge latency (2-FeFET, 16-bit):");
    for k in [0usize, 1, 2, 4, 8] {
        let q = class.with_spread_mismatches(k);
        let out = row.search(&q, &timing)?;
        println!(
            "  d = {k:>2}: matched = {:>5}, latency = {:.0} ps, energy = {:.2} fJ",
            out.matched,
            out.latency * 1e12,
            out.energy_total * 1e15
        );
    }
    println!("\nThe latency gradient is what threshold-tunable HDC sensing exploits.");
    Ok(())
}
