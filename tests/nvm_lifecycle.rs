//! Non-volatile lifecycle across the stack: transient write → search →
//! rewrite → search, with state carried in the ferroelectric devices.

use ftcam::cells::{DesignKind, RowTestbench, SearchTiming, WriteTiming};
use ftcam::devices::TechCard;
use ftcam::workloads::TernaryWord;

fn testbench(kind: DesignKind, width: usize) -> RowTestbench {
    RowTestbench::new(
        kind.instantiate(),
        TechCard::hp45(),
        Default::default(),
        width,
    )
    .expect("testbench builds")
}

#[test]
fn write_search_rewrite_cycle() {
    let timing = SearchTiming::fast();
    let write = WriteTiming::default();
    let mut row = testbench(DesignKind::FeFet2T, 4);

    let word_a: TernaryWord = "10X1".parse().unwrap();
    let out = row.write_word(&word_a, &write).unwrap();
    assert!(out.programmed_ok);
    assert!(
        row.search(&"1011".parse().unwrap(), &timing)
            .unwrap()
            .matched
    );
    assert!(
        !row.search(&"0011".parse().unwrap(), &timing)
            .unwrap()
            .matched
    );

    // Rewrite with a different word — the erase phase must clear word A.
    let word_b: TernaryWord = "01X0".parse().unwrap();
    let out = row.write_word(&word_b, &write).unwrap();
    assert!(out.programmed_ok);
    assert!(
        row.search(&"0110".parse().unwrap(), &timing)
            .unwrap()
            .matched
    );
    assert!(
        !row.search(&"1011".parse().unwrap(), &timing)
            .unwrap()
            .matched
    );
}

#[test]
fn searches_do_not_disturb_stored_state() {
    let timing = SearchTiming::fast();
    let mut row = testbench(DesignKind::FeFet2T, 4);
    let word: TernaryWord = "1010".parse().unwrap();
    row.write_word(&word, &WriteTiming::default()).unwrap();

    // A hundred searches, alternating match/mismatch.
    let hit: TernaryWord = "1010".parse().unwrap();
    let miss: TernaryWord = "0101".parse().unwrap();
    for _ in 0..50 {
        assert!(row.search(&hit, &timing).unwrap().matched);
        assert!(!row.search(&miss, &timing).unwrap().matched);
    }
}

#[test]
fn all_fefet_variants_support_the_lifecycle() {
    let timing = SearchTiming::fast();
    for kind in [
        DesignKind::FeFet2T,
        DesignKind::EaLowSwing,
        DesignKind::EaSlGated,
        DesignKind::EaFull,
    ] {
        let mut row = testbench(kind, 4);
        let word: TernaryWord = "1X01".parse().unwrap();
        let out = row.write_word(&word, &WriteTiming::default()).unwrap();
        assert!(out.programmed_ok, "{}: write failed", kind.key());
        assert!(
            row.search(&"1101".parse().unwrap(), &timing)
                .unwrap()
                .matched,
            "{}: match failed after write",
            kind.key()
        );
        assert!(
            !row.search(&"1110".parse().unwrap(), &timing)
                .unwrap()
                .matched,
            "{}: mismatch failed after write",
            kind.key()
        );
    }
}
