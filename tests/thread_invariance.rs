//! The headline guarantee of the parallel sweep engine: for every
//! experiment, the artefact produced with N worker threads is
//! bit-identical to the serial (threads = 1) run. Jobs are pure per
//! sweep item and assembly is item-ordered, so only the timing fields
//! of the attached exec stats may differ — those are stripped before
//! comparison.

use ftcam::core::{experiments, Evaluator};

/// A cross-section of drivers covering every executor pattern: plain
/// per-design fan-out (table1), flattened design×width grids with
/// skipped points (fig4), per-alpha sweeps (fig8), measurement triples
/// reassembled against a baseline (table3), and nested Monte-Carlo
/// under the outer executor (fig7).
const IDS: [&str; 5] = ["table1", "fig4", "fig8", "table3", "fig7"];

#[test]
fn artifacts_are_bit_identical_for_any_thread_count() {
    for id in IDS {
        let serial_eval = Evaluator::quick().with_threads(1);
        let mut serial = experiments::run_by_id(&serial_eval, id, false)
            .unwrap_or_else(|e| panic!("{id} (serial) failed: {e}"));

        let parallel_eval = Evaluator::quick().with_threads(4);
        let mut parallel = experiments::run_by_id(&parallel_eval, id, false)
            .unwrap_or_else(|e| panic!("{id} (4 threads) failed: {e}"));

        // The calibration workload itself is deterministic even though
        // the hit/dedup-wait split between racing threads is not.
        let serial_exec = serial.clear_exec().expect("exec stats attached");
        let parallel_exec = parallel.clear_exec().expect("exec stats attached");
        assert_eq!(
            serial_exec.cache.calibrations, parallel_exec.cache.calibrations,
            "{id}: thread count changed how many rows were calibrated"
        );
        assert_eq!(
            serial_exec.jobs, parallel_exec.jobs,
            "{id}: job count diverged"
        );

        let serial_json = serde_json::to_string_pretty(&serial).expect("serialises");
        let parallel_json = serde_json::to_string_pretty(&parallel).expect("serialises");
        assert_eq!(
            serial_json, parallel_json,
            "{id}: parallel artefact differs from the serial reference"
        );
    }
}

#[test]
fn oversubscription_does_not_change_output() {
    // Far more threads than sweep items: the executor clamps the worker
    // count, and the artefact still matches the serial run.
    let serial_eval = Evaluator::quick().with_threads(1);
    let mut serial = experiments::run_by_id(&serial_eval, "fig2", false).unwrap();
    serial.clear_exec();

    let wide_eval = Evaluator::quick().with_threads(32);
    let mut wide = experiments::run_by_id(&wide_eval, "fig2", false).unwrap();
    wide.clear_exec();

    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&wide).unwrap()
    );
}
