//! Cross-crate property test: the transistor-level search decision must
//! agree with the functional golden model for arbitrary ternary contents
//! and queries.

use ftcam::cells::{DesignKind, RowTestbench, SearchTiming};
use ftcam::devices::TechCard;
use ftcam::workloads::{Ternary, TernaryWord};
use proptest::prelude::*;

const WIDTH: usize = 8;

fn ternary_strategy() -> impl Strategy<Value = Ternary> {
    prop_oneof![
        2 => Just(Ternary::Zero),
        2 => Just(Ternary::One),
        1 => Just(Ternary::X),
    ]
}

fn word_strategy() -> impl Strategy<Value = TernaryWord> {
    proptest::collection::vec(ternary_strategy(), WIDTH).prop_map(TernaryWord::new)
}

/// Definite (no-X) query words, as hardware drives them.
fn query_strategy() -> impl Strategy<Value = TernaryWord> {
    proptest::collection::vec(any::<bool>(), WIDTH)
        .prop_map(|bits| bits.into_iter().map(Ternary::from_bit).collect())
}

proptest! {
    // Each case is a full transistor-level program + search: keep the case
    // count modest (the default 256 would take minutes).
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fefet_circuit_matches_golden_model(
        stored in word_strategy(),
        query in query_strategy(),
    ) {
        let mut row = RowTestbench::new(
            DesignKind::FeFet2T.instantiate(),
            TechCard::hp45(),
            Default::default(),
            WIDTH,
        ).expect("testbench builds");
        row.program_word(&stored).expect("programs");
        let outcome = row.search(&query, &SearchTiming::fast()).expect("search runs");
        prop_assert_eq!(
            outcome.matched,
            stored.matches(&query),
            "stored {} query {}",
            stored,
            query
        );
        // Energy and margin are physical regardless of outcome.
        prop_assert!(outcome.energy_total > 0.0);
        prop_assert!(outcome.sense_margin > 0.0, "margin {}", outcome.sense_margin);
    }

    #[test]
    fn cmos_circuit_matches_golden_model(
        stored in word_strategy(),
        query in query_strategy(),
    ) {
        let mut row = RowTestbench::new(
            DesignKind::Cmos16T.instantiate(),
            TechCard::hp45(),
            Default::default(),
            WIDTH,
        ).expect("testbench builds");
        row.program_word(&stored).expect("programs");
        let outcome = row.search(&query, &SearchTiming::fast()).expect("search runs");
        prop_assert_eq!(outcome.matched, stored.matches(&query));
    }
}
