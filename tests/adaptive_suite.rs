//! End-to-end accuracy of LTE-controlled adaptive stepping on real
//! experiment drivers: the artefacts must numerically agree with the
//! fixed-step reference while taking at least 2× fewer accepted steps.
//!
//! This file intentionally holds a single `#[test]`. The per-run step
//! counts come from process-wide counters (see
//! `ftcam_circuit::global_step_stats`), so concurrent tests in the same
//! binary would bleed into each other's deltas.

use ftcam::core::{experiments, Evaluator};
use ftcam_cells::StepControl;
use serde::{Serialize, Value};

/// Numeric agreement: 1% relative, or negligible against the largest
/// magnitude seen anywhere in the artefact (waveform tails decay to
/// µV-scale samples where relative error is meaningless).
fn assert_close(a: &Value, b: &Value, scale: f64, path: &str) {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => {
            let (x, y) = (x.as_f64(), y.as_f64());
            let diff = (x - y).abs();
            let rel = diff / x.abs().max(y.abs()).max(1e-30);
            assert!(
                rel < 0.01 || diff < 1e-3 * scale,
                "{path}: fixed {x:e} vs adaptive {y:e} ({:.2}% off)",
                rel * 100.0
            );
        }
        (Value::Seq(xs), Value::Seq(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{path}: array length");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_close(x, y, scale, &format!("{path}[{i}]"));
            }
        }
        (Value::Map(xs), Value::Map(ys)) => {
            for ((kx, x), (ky, y)) in xs.iter().zip(ys) {
                assert_eq!(kx, ky, "{path}: object keys");
                assert_close(x, y, scale, &format!("{path}.{kx}"));
            }
            assert_eq!(xs.len(), ys.len(), "{path}: object size");
        }
        _ => assert_eq!(a, b, "{path}: non-numeric mismatch"),
    }
}

/// Largest |number| in the artefact, used as the absolute-tolerance scale.
fn max_abs(v: &Value) -> f64 {
    match v {
        Value::Num(x) => x.as_f64().abs(),
        Value::Seq(xs) => xs.iter().map(max_abs).fold(0.0, f64::max),
        Value::Map(xs) => xs.iter().map(|(_, x)| max_abs(x)).fold(0.0, f64::max),
        _ => 0.0,
    }
}

#[test]
fn adaptive_suite_matches_fixed_at_twice_fewer_steps() {
    // Two structurally different drivers: per-design fan-out (table1)
    // and a flattened design×width grid (fig4).
    for id in ["table1", "fig4"] {
        let fixed_eval = Evaluator::quick().with_threads(1);
        let mut fixed = experiments::run_by_id(&fixed_eval, id, false)
            .unwrap_or_else(|e| panic!("{id} (fixed) failed: {e}"));

        let adaptive_eval = Evaluator::quick()
            .with_threads(1)
            .with_step_control(StepControl::adaptive());
        let mut adaptive = experiments::run_by_id(&adaptive_eval, id, false)
            .unwrap_or_else(|e| panic!("{id} (adaptive) failed: {e}"));

        let fixed_steps = fixed.clear_exec().expect("exec stats attached").steps;
        let adaptive_steps = adaptive.clear_exec().expect("exec stats attached").steps;
        assert_eq!(
            fixed_steps.rejected, 0,
            "{id}: fixed stepping never rejects"
        );
        assert!(
            adaptive_steps.accepted * 2 <= fixed_steps.accepted,
            "{id}: adaptive {} vs fixed {} accepted steps",
            adaptive_steps.accepted,
            fixed_steps.accepted
        );

        let fj = fixed.to_value();
        let aj = adaptive.to_value();
        assert_close(&fj, &aj, max_abs(&fj), id);
    }
}
