//! Smoke tests for the experiment drivers with miniature parameter sets —
//! every driver must produce a structurally valid artefact.

use ftcam::cells::DesignKind;
use ftcam::core::{experiments, Artifact, Evaluator};

#[test]
fn device_figure_runs() {
    let eval = Evaluator::quick();
    let params = experiments::e01_hysteresis::Params {
        steps: 24,
        ..Default::default()
    };
    let Artifact::Figure(fig) = experiments::e01_hysteresis::run(&eval, &params).unwrap() else {
        panic!("expected figure")
    };
    assert_eq!(fig.series.len(), 4);
    assert_eq!(fig.x.len(), 25);
}

#[test]
fn write_table_runs() {
    let eval = Evaluator::quick();
    let params = experiments::e11_write::Params {
        amplitudes: vec![4.0],
        pulse_widths: vec![],
        width: 2,
        design: DesignKind::FeFet2T,
    };
    let Artifact::Table(t) = experiments::e11_write::run(&eval, &params).unwrap() else {
        panic!("expected table")
    };
    assert_eq!(t.rows.len(), 1);
    assert_eq!(t.cell("4.0 V / 30 ns", "programmed ok"), Some(1.0));
}

#[test]
fn array_table_runs_and_serializes() {
    let eval = Evaluator::quick();
    let params = experiments::e09_array_table::Params {
        shapes: vec![(16, 8)],
        designs: vec![DesignKind::FeFet2T, DesignKind::EaFull],
    };
    let artifact = experiments::e09_array_table::run(&eval, &params).unwrap();
    // Round-trips through serde (what the experiments binary writes);
    // floating-point cells may differ by an ULP, so compare structure and
    // values with a tolerance.
    let json = serde_json::to_string(&artifact).unwrap();
    let back: Artifact = serde_json::from_str(&json).unwrap();
    let (Artifact::Table(a), Artifact::Table(b)) = (&artifact, &back) else {
        panic!("expected tables")
    };
    assert_eq!(a.id, b.id);
    assert_eq!(a.columns, b.columns);
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.label, rb.label);
        for (va, vb) in ra.values.iter().zip(&rb.values) {
            assert!((va - vb).abs() <= 1e-12 * va.abs().max(1.0));
        }
    }
}

#[test]
fn dispatch_covers_every_id() {
    // Only verify dispatch wiring (unknown ids error; known ids exist in
    // the registry) — running all sixteen here would double the suite time.
    assert_eq!(experiments::ALL_IDS.len(), 16);
    let eval = Evaluator::quick();
    assert!(experiments::run_by_id(&eval, "not-an-id", false).is_err());
}
