//! The paper's headline claims, asserted end-to-end across the whole
//! stack (device models → cells → calibration → array projection).

use ftcam::array::{ArrayModel, ArrayParams, CalibrationCache};
use ftcam::cells::{DesignKind, SearchTiming};
use ftcam::devices::TechCard;

fn cache() -> CalibrationCache {
    CalibrationCache::new(TechCard::hp45(), Default::default(), SearchTiming::fast())
}

fn energy_per_bit(cache: &CalibrationCache, kind: DesignKind, rows: usize, width: usize) -> f64 {
    let calib = cache.get(kind, width).expect("calibration runs");
    let model = ArrayModel::new(ArrayParams::new(kind, rows, width), calib);
    model.typical_energy_per_bit()
}

/// Claim 1: FeFET TCAM beats the CMOS 16T baseline on search energy.
#[test]
fn fefet_beats_cmos_baseline() {
    let cache = cache();
    let cmos = energy_per_bit(&cache, DesignKind::Cmos16T, 64, 16);
    let fefet = energy_per_bit(&cache, DesignKind::FeFet2T, 64, 16);
    assert!(
        fefet < 0.75 * cmos,
        "2-FeFET {:.3} fJ/bit vs CMOS {:.3} fJ/bit",
        fefet * 1e15,
        cmos * 1e15
    );
}

/// Claim 2: the energy-aware designs beat the 2-FeFET state of the art by
/// ≈ 2× or more at the array level.
#[test]
fn energy_aware_designs_beat_fefet_baseline() {
    let cache = cache();
    let base = energy_per_bit(&cache, DesignKind::FeFet2T, 64, 16);
    for kind in [
        DesignKind::EaLowSwing,
        DesignKind::EaMlSegmented,
        DesignKind::EaFull,
    ] {
        let e = energy_per_bit(&cache, kind, 64, 16);
        assert!(
            e < 0.6 * base,
            "{}: {:.3} fJ/bit vs baseline {:.3} fJ/bit",
            kind.key(),
            e * 1e15,
            base * 1e15
        );
    }
}

/// Claim 3: absolute numbers land in the published fJ/bit/search regime
/// (≈ 0.05–3 fJ/bit at 45 nm-class nodes).
#[test]
fn absolute_energy_is_in_the_published_regime() {
    let cache = cache();
    for kind in DesignKind::ALL {
        let e = energy_per_bit(&cache, kind, 64, 16) * 1e15;
        assert!(
            (0.02..5.0).contains(&e),
            "{}: {e:.3} fJ/bit/search out of regime",
            kind.key()
        );
    }
}

/// Claim 4: FeFET density advantage — ≥ 5× smaller cell than 16T CMOS.
#[test]
fn fefet_cell_is_denser_than_cmos() {
    let cmos = DesignKind::Cmos16T.instantiate().area_f2();
    let fefet = DesignKind::FeFet2T.instantiate().area_f2();
    assert!(
        fefet * 5.0 < cmos,
        "areas: fefet {fefet} F², cmos {cmos} F²"
    );
}

/// Claim 5: the write path is non-volatile, fJ-scale and ns-scale.
#[test]
fn write_energy_and_latency_scale() {
    let cache = cache();
    let calib = cache.get(DesignKind::FeFet2T, 8).expect("calibration runs");
    let e_bit = calib.e_write_per_bit.expect("NVM design") * 1e15;
    assert!(
        (1.0..200.0).contains(&e_bit),
        "write energy {e_bit:.2} fJ/bit out of regime"
    );
}
