//! Tier-1 smoke of the behavioural search engine through the `ftcam`
//! facade: an IP routing workload replayed end-to-end — functional
//! agreement with the golden table, calibrated energy metering, and the
//! e17 experiment driver.

use ftcam::cells::DesignKind;
use ftcam::core::{Artifact, Evaluator};
use ftcam::engine::{experiments as e17, EngineConfig, WorkloadReplay};
use ftcam::workloads::IpRoutingWorkloadParams;

#[test]
fn facade_engine_replays_ip_workload() {
    let eval = Evaluator::quick();
    let replay = WorkloadReplay::ip_routing(&IpRoutingWorkloadParams {
        entries: 128,
        queries: 64,
        width: 16,
        ..IpRoutingWorkloadParams::default()
    });
    let calib = eval
        .calibrations()
        .get(DesignKind::EaFull, 16)
        .expect("calibration");
    let engine = replay.engine(EngineConfig::default()).with_design(&calib);
    // Functional agreement with the golden table on the replayed stream.
    let queries = replay.queries(0..64);
    for q in &queries {
        assert_eq!(engine.search(q), replay.table.search(q).map(|i| i as u32));
    }
    // Metered replay produces a positive calibrated energy.
    let mut session = engine.session();
    session.replay(&queries);
    let stats = session.finish();
    assert_eq!(stats.queries, 64);
    let pj = stats.pj_per_query(DesignKind::EaFull).expect("metered");
    assert!(pj > 0.0 && pj.is_finite(), "pJ/query = {pj}");
}

#[test]
fn e17_driver_runs_through_the_facade() {
    let eval = Evaluator::quick();
    let params = e17::Params {
        row_counts: vec![128],
        queries: 32,
        designs: vec![DesignKind::FeFet2T],
        ..e17::Params::default()
    };
    let Artifact::Table(table) = e17::run(&eval, &params).expect("e17 runs") else {
        panic!("expected a table artifact");
    };
    assert!(table.cell("fefet2t", "128").expect("cell").is_finite());
}
