//! Validates the array model's central scaling assumption against a real
//! multi-row transistor-level array: rows sharing search lines behave like
//! independent calibrated rows.

use ftcam::cells::{ArrayTestbench, DesignKind, RowTestbench, SearchTiming};
use ftcam::devices::TechCard;
use ftcam::workloads::TernaryWord;

const WIDTH: usize = 8;

fn words() -> Vec<TernaryWord> {
    vec![
        "10110100".parse().unwrap(),
        "1011010X".parse().unwrap(),
        "01001011".parse().unwrap(),
        "XXXXXXXX".parse().unwrap(),
    ]
}

/// Every row of the array decides exactly as the golden model says,
/// including the priority (first-match) resolution.
#[test]
fn array_rows_agree_with_golden_model() {
    let timing = SearchTiming::fast();
    let mut arr = ArrayTestbench::new(
        DesignKind::FeFet2T.instantiate(),
        TechCard::hp45(),
        Default::default(),
        4,
        WIDTH,
    )
    .expect("array builds");
    let rows = words();
    arr.program(&rows).expect("programs");

    for query_s in ["10110100", "10110101", "01001011", "11111111"] {
        let query: TernaryWord = query_s.parse().unwrap();
        let out = arr.search(&query, &timing).expect("search runs");
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(
                out.row_matches[r],
                row.matches(&query),
                "query {query_s}, row {r}"
            );
        }
        assert_eq!(out.first_match, arr.stored_table().search(&query));
    }
}

/// Total array search energy tracks rows × single-row energy: the linear
/// scaling the analytical projection relies on.
#[test]
fn array_energy_scales_linearly_with_rows() {
    let timing = SearchTiming::fast();
    let stored: TernaryWord = "10110100".parse().unwrap();
    let query = stored.with_spread_mismatches(4);

    // Single calibrated row.
    let mut row = RowTestbench::new(
        DesignKind::FeFet2T.instantiate(),
        TechCard::hp45(),
        Default::default(),
        WIDTH,
    )
    .unwrap();
    row.program_word(&stored).unwrap();
    let e_row = row.search(&query, &timing).unwrap().energy_total;

    // 4 identical rows sharing SL drivers.
    let mut arr = ArrayTestbench::new(
        DesignKind::FeFet2T.instantiate(),
        TechCard::hp45(),
        Default::default(),
        4,
        WIDTH,
    )
    .unwrap();
    arr.program(&vec![stored.clone(); 4]).unwrap();
    let out = arr.search(&query, &timing).unwrap();

    let ratio = out.energy_total / (4.0 * e_row);
    assert!(
        (0.8..1.25).contains(&ratio),
        "array energy {:.3e} vs 4x row {:.3e} (ratio {ratio:.3})",
        out.energy_total,
        4.0 * e_row
    );
}

/// The shared search lines are charged once per search regardless of row
/// count per driver — SL energy grows with rows only through gate loading,
/// NOT once per row per driver.
#[test]
fn shared_search_lines_amortise_driver_energy() {
    let timing = SearchTiming::fast();
    let stored: TernaryWord = "10110100".parse().unwrap();
    let query = stored.with_spread_mismatches(2);
    let sl_energy = |rows: usize| {
        let mut arr = ArrayTestbench::new(
            DesignKind::FeFet2T.instantiate(),
            TechCard::hp45(),
            Default::default(),
            rows,
            WIDTH,
        )
        .unwrap();
        arr.program(&vec![stored.clone(); rows]).unwrap();
        arr.search(&query, &timing).unwrap().energy_sl
    };
    let e2 = sl_energy(2);
    let e6 = sl_energy(6);
    // Tripling the rows triples wire + gate load → ~3x, never ~9x.
    let ratio = e6 / e2;
    assert!((2.0..4.5).contains(&ratio), "SL scaling ratio {ratio:.2}");
}

/// The CMOS baseline also validates in array form (different cell, same
/// discipline).
#[test]
fn cmos_array_decides_correctly() {
    let timing = SearchTiming::fast();
    let mut arr = ArrayTestbench::new(
        DesignKind::Cmos16T.instantiate(),
        TechCard::hp45(),
        Default::default(),
        2,
        4,
    )
    .unwrap();
    let rows: Vec<TernaryWord> = vec!["10X1".parse().unwrap(), "0101".parse().unwrap()];
    arr.program(&rows).unwrap();
    let out = arr.search(&"1011".parse().unwrap(), &timing).unwrap();
    assert_eq!(out.row_matches, vec![true, false]);
    assert_eq!(out.first_match, Some(0));
}
